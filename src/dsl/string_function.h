// String functions of the DSL (Appendix B) plus the paper's affix extension
// (Appendix D). A string function applies to the input string s and returns
// one or more output strings:
//
//   ConstantStr(x)   the literal x (single output).
//   SubStr(l, r)     the substring s[l, r) located by two position
//                    functions (single output; fails if either position
//                    fails or l >= r).
//   Prefix(tau, k)   every non-empty prefix of the k-th match of the
//                    regex term tau in s (multi-output).
//   Suffix(tau, k)   every non-empty suffix of the k-th match.
//
// The affix functions are what make "Street -> St" and "Avenue -> Ave"
// share a program: the original Gulwani DSL requires deterministic single
// outputs and cannot express them (Appendix D).
#ifndef USTL_DSL_STRING_FUNCTION_H_
#define USTL_DSL_STRING_FUNCTION_H_

#include <string>
#include <string_view>
#include <vector>

#include "dsl/position.h"

namespace ustl {

/// A string function. Immutable value type with a canonical byte key.
class StringFn {
 public:
  enum class Kind : uint8_t {
    kConstantStr = 0,
    kSubStr = 1,
    kPrefix = 2,
    kSuffix = 3,
  };

  static StringFn ConstantStr(std::string value);
  static StringFn SubStr(PosFn left, PosFn right);
  /// Prefix/Suffix require a regex term and k != 0 (negative k counts
  /// matches from the end, mirroring MatchPos).
  static StringFn Prefix(Term term, int k);
  static StringFn Suffix(Term term, int k);

  Kind kind() const { return kind_; }
  const std::string& constant() const { return constant_; }
  const PosFn& left() const { return left_; }
  const PosFn& right() const { return right_; }
  const Term& term() const { return term_; }
  int k() const { return k_; }

  /// All output strings of this function on `s`. ConstantStr/SubStr yield
  /// zero or one output; affix functions yield up to |match| outputs.
  std::vector<std::string> Eval(std::string_view s) const;

  /// True iff `out` is one of the outputs of this function on `s`.
  /// Cheaper than materializing Eval() for affix functions.
  bool CanProduce(std::string_view s, std::string_view out) const;

  /// Debug form, e.g. "SubStr(MatchPos(TC, 1, B), MatchPos(Tl, 1, E))".
  std::string ToString() const;

  /// Canonical byte key for interning; injective over StringFn values.
  std::string Key() const;

  bool operator==(const StringFn& o) const;
  bool operator<(const StringFn& o) const;

 private:
  StringFn()
      : left_(PosFn::ConstPos(1)),
        right_(PosFn::ConstPos(1)),
        term_(Term::Regex(CharClass::kDigit)) {}

  Kind kind_ = Kind::kConstantStr;
  std::string constant_;
  PosFn left_, right_;  // kSubStr
  Term term_;           // affix kinds
  int k_ = 1;           // affix kinds
};

}  // namespace ustl

#endif  // USTL_DSL_STRING_FUNCTION_H_

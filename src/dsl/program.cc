#include "dsl/program.h"

#include <algorithm>

#include "common/string_util.h"

namespace ustl {

Program Program::FromPath(const LabelPath& path,
                          const LabelInterner& interner) {
  std::vector<StringFn> fns;
  fns.reserve(path.size());
  for (LabelId id : path) fns.push_back(interner.Get(id));
  return Program(std::move(fns));
}

Result<std::vector<std::string>> Program::Evaluate(std::string_view s,
                                                   size_t max_outputs) const {
  std::vector<std::string> acc = {""};
  for (const StringFn& fn : fns_) {
    std::vector<std::string> choices = fn.Eval(s);
    if (choices.empty()) return std::vector<std::string>{};
    if (acc.size() * choices.size() > max_outputs) {
      return Status::ResourceExhausted(
          "program output set exceeds " + std::to_string(max_outputs));
    }
    std::vector<std::string> next;
    next.reserve(acc.size() * choices.size());
    for (const std::string& prefix : acc) {
      for (const std::string& choice : choices) {
        next.push_back(prefix + choice);
      }
    }
    acc = std::move(next);
  }
  std::sort(acc.begin(), acc.end());
  acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
  return acc;
}

Result<std::string> Program::EvaluateDeterministic(std::string_view s) const {
  std::string out;
  for (const StringFn& fn : fns_) {
    std::vector<std::string> choices = fn.Eval(s);
    if (choices.empty()) {
      return Status::FailedPrecondition("function produced no output: " +
                                        fn.ToString());
    }
    if (choices.size() > 1) {
      return Status::FailedPrecondition("function is multi-valued: " +
                                        fn.ToString());
    }
    out += choices[0];
  }
  return out;
}

bool Program::MatchFrom(std::string_view s, std::string_view t,
                        size_t fn_index, size_t t_offset) const {
  if (fn_index == fns_.size()) return t_offset == t.size();
  const StringFn& fn = fns_[fn_index];
  std::string_view rest = t.substr(t_offset);
  // Try each output choice that is a prefix of the remaining target.
  for (const std::string& choice : fn.Eval(s)) {
    if (!choice.empty() && StartsWith(rest, choice) &&
        MatchFrom(s, t, fn_index + 1, t_offset + choice.size())) {
      return true;
    }
  }
  return false;
}

bool Program::ConsistentWith(std::string_view s, std::string_view t) const {
  if (fns_.empty()) return false;
  return MatchFrom(s, t, 0, 0);
}

std::optional<std::vector<std::string>> Program::SplitTarget(
    std::string_view s, std::string_view t) const {
  if (fns_.empty()) return std::nullopt;
  std::vector<std::string> pieces;
  auto dfs = [&](auto&& self, size_t fn_index, size_t t_offset) -> bool {
    if (fn_index == fns_.size()) return t_offset == t.size();
    std::string_view rest = t.substr(t_offset);
    for (const std::string& choice : fns_[fn_index].Eval(s)) {
      if (choice.empty() || !StartsWith(rest, choice)) continue;
      pieces.push_back(choice);
      if (self(self, fn_index + 1, t_offset + choice.size())) return true;
      pieces.pop_back();
    }
    return false;
  };
  if (!dfs(dfs, 0, 0)) return std::nullopt;
  return pieces;
}

double Program::ConstantCoverage(std::string_view s,
                                 std::string_view t) const {
  if (t.empty()) return 0.0;
  std::optional<std::vector<std::string>> pieces = SplitTarget(s, t);
  if (!pieces.has_value()) return 0.0;
  size_t constant_chars = 0;
  for (size_t i = 0; i < pieces->size(); ++i) {
    if (fns_[i].kind() == StringFn::Kind::kConstantStr) {
      constant_chars += (*pieces)[i].size();
    }
  }
  return static_cast<double>(constant_chars) / static_cast<double>(t.size());
}

std::string Program::ToString() const {
  std::string out;
  for (size_t i = 0; i < fns_.size(); ++i) {
    if (i > 0) out += " (+) ";
    out += fns_[i].ToString();
  }
  return out;
}

}  // namespace ustl

#include "dsl/parser.h"

#include <cctype>
#include <cstdio>

namespace ustl {
namespace {

// --- Serialization -------------------------------------------------------

std::string SerializeTerm(const Term& term) {
  if (term.is_regex()) return CharClassTermName(term.char_class());
  return "T" + QuoteStringLiteral(term.literal());
}

std::string SerializePosFn(const PosFn& pos) {
  if (pos.is_const_pos()) {
    return "ConstPos(" + std::to_string(pos.k()) + ")";
  }
  return "MatchPos(" + SerializeTerm(pos.term()) + ", " +
         std::to_string(pos.k()) + ", " +
         (pos.dir() == Dir::kBegin ? "B" : "E") + ")";
}

std::string SerializeStringFn(const StringFn& fn) {
  switch (fn.kind()) {
    case StringFn::Kind::kConstantStr:
      return "ConstantStr(" + QuoteStringLiteral(fn.constant()) + ")";
    case StringFn::Kind::kSubStr:
      return "SubStr(" + SerializePosFn(fn.left()) + ", " +
             SerializePosFn(fn.right()) + ")";
    case StringFn::Kind::kPrefix:
      return "Prefix(" + SerializeTerm(fn.term()) + ", " +
             std::to_string(fn.k()) + ")";
    case StringFn::Kind::kSuffix:
      return "Suffix(" + SerializeTerm(fn.term()) + ", " +
             std::to_string(fn.k()) + ")";
  }
  return "?";
}

// --- Parsing -------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Program> Parse() {
    std::vector<StringFn> fns;
    Status status = ParseStringFn(&fns);
    if (!status.ok()) return status;
    SkipSpace();
    while (!AtEnd()) {
      if (!Consume("(+)")) {
        return Error("expected '(+)' between string functions");
      }
      status = ParseStringFn(&fns);
      if (!status.ok()) return status;
      SkipSpace();
    }
    return Program(std::move(fns));
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Consumes `token` if it is next (after whitespace); false otherwise.
  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  // Peeks the next identifier (letters only) without consuming.
  std::string_view PeekIdent() {
    SkipSpace();
    size_t end = pos_;
    while (end < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    return text_.substr(pos_, end - pos_);
  }

  Status Error(const std::string& reason) const {
    return Status::InvalidArgument("program parse error at byte " +
                                   std::to_string(pos_) + ": " + reason);
  }

  Status ParseInt(int* out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Error("expected an integer");
    }
    *out = std::atoi(std::string(text_.substr(start, pos_ - start)).c_str());
    return Status::OK();
  }

  Status ParseQuotedString(std::string* out) {
    SkipSpace();
    if (AtEnd() || text_[pos_] != '"') return Error("expected '\"'");
    ++pos_;
    out->clear();
    while (!AtEnd() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '\\': out->push_back('\\'); break;
        case '"': out->push_back('"'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'x': {
          if (pos_ + 2 > text_.size()) return Error("truncated \\x escape");
          auto hex = [](char h) -> int {
            if (h >= '0' && h <= '9') return h - '0';
            if (h >= 'a' && h <= 'f') return h - 'a' + 10;
            if (h >= 'A' && h <= 'F') return h - 'A' + 10;
            return -1;
          };
          const int hi = hex(text_[pos_]);
          const int lo = hex(text_[pos_ + 1]);
          if (hi < 0 || lo < 0) return Error("bad \\x escape");
          pos_ += 2;
          out->push_back(static_cast<char>(hi * 16 + lo));
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ParseTerm(Term* out) {
    SkipSpace();
    std::string_view ident = PeekIdent();
    if (ident == "Td" || ident == "Tl" || ident == "TC" || ident == "Tb") {
      pos_ += 2;
      CharClass c = CharClass::kDigit;
      if (ident == "Tl") c = CharClass::kLower;
      if (ident == "TC") c = CharClass::kUpper;
      if (ident == "Tb") c = CharClass::kSpace;
      *out = Term::Regex(c);
      return Status::OK();
    }
    // Constant term: T"literal".
    if (!AtEnd() && text_[pos_] == 'T') {
      ++pos_;
      std::string literal;
      Status status = ParseQuotedString(&literal);
      if (!status.ok()) return status;
      if (literal.empty()) return Error("constant term must be non-empty");
      *out = Term::Constant(std::move(literal));
      return Status::OK();
    }
    return Error("expected a term (Td/Tl/TC/Tb or T\"...\")");
  }

  Status ParsePosFn(PosFn* out) {
    std::string_view ident = PeekIdent();
    if (ident == "ConstPos") {
      pos_ += ident.size();
      if (!Consume("(")) return Error("expected '(' after ConstPos");
      int k = 0;
      Status status = ParseInt(&k);
      if (!status.ok()) return status;
      if (k == 0) return Error("ConstPos requires k != 0");
      if (!Consume(")")) return Error("expected ')'");
      *out = PosFn::ConstPos(k);
      return Status::OK();
    }
    if (ident == "MatchPos") {
      pos_ += ident.size();
      if (!Consume("(")) return Error("expected '(' after MatchPos");
      Term term = Term::Regex(CharClass::kDigit);
      Status status = ParseTerm(&term);
      if (!status.ok()) return status;
      if (!Consume(",")) return Error("expected ','");
      int k = 0;
      status = ParseInt(&k);
      if (!status.ok()) return status;
      if (k == 0) return Error("MatchPos requires k != 0");
      if (!Consume(",")) return Error("expected ','");
      Dir dir;
      if (Consume("B")) {
        dir = Dir::kBegin;
      } else if (Consume("E")) {
        dir = Dir::kEnd;
      } else {
        return Error("expected direction B or E");
      }
      if (!Consume(")")) return Error("expected ')'");
      *out = PosFn::MatchPos(term, k, dir);
      return Status::OK();
    }
    return Error("expected a position function (ConstPos or MatchPos)");
  }

  Status ParseAffixArgs(Term* term, int* k) {
    if (!Consume("(")) return Error("expected '('");
    Status status = ParseTerm(term);
    if (!status.ok()) return status;
    if (!term->is_regex()) {
      return Error("affix functions require a regex term");
    }
    if (!Consume(",")) return Error("expected ','");
    status = ParseInt(k);
    if (!status.ok()) return status;
    if (*k == 0) return Error("affix functions require k != 0");
    if (!Consume(")")) return Error("expected ')'");
    return Status::OK();
  }

  Status ParseStringFn(std::vector<StringFn>* fns) {
    std::string_view ident = PeekIdent();
    if (ident == "ConstantStr") {
      pos_ += ident.size();
      if (!Consume("(")) return Error("expected '(' after ConstantStr");
      std::string value;
      Status status = ParseQuotedString(&value);
      if (!status.ok()) return status;
      if (value.empty()) return Error("ConstantStr must be non-empty");
      if (!Consume(")")) return Error("expected ')'");
      fns->push_back(StringFn::ConstantStr(std::move(value)));
      return Status::OK();
    }
    if (ident == "SubStr") {
      pos_ += ident.size();
      if (!Consume("(")) return Error("expected '(' after SubStr");
      PosFn left = PosFn::ConstPos(1), right = PosFn::ConstPos(1);
      Status status = ParsePosFn(&left);
      if (!status.ok()) return status;
      if (!Consume(",")) return Error("expected ','");
      status = ParsePosFn(&right);
      if (!status.ok()) return status;
      if (!Consume(")")) return Error("expected ')'");
      fns->push_back(StringFn::SubStr(left, right));
      return Status::OK();
    }
    if (ident == "Prefix" || ident == "Suffix") {
      const bool is_prefix = ident == "Prefix";
      pos_ += ident.size();
      Term term = Term::Regex(CharClass::kDigit);
      int k = 0;
      Status status = ParseAffixArgs(&term, &k);
      if (!status.ok()) return status;
      fns->push_back(is_prefix ? StringFn::Prefix(term, k)
                               : StringFn::Suffix(term, k));
      return Status::OK();
    }
    return Error("expected a string function "
                 "(ConstantStr/SubStr/Prefix/Suffix)");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string QuoteStringLiteral(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (uc < 0x20 || uc == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", uc);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string SerializeProgram(const Program& program) {
  std::string out;
  for (size_t i = 0; i < program.size(); ++i) {
    if (i > 0) out += " (+) ";
    out += SerializeStringFn(program.functions()[i]);
  }
  return out;
}

Result<Program> ParseProgram(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace ustl

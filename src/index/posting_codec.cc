#include "index/posting_codec.h"

#include <algorithm>

#include "common/status.h"

namespace ustl {
namespace {

// --- LEB128 ---------------------------------------------------------------

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

size_t VarintBytes(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

const uint8_t* GetVarint(const uint8_t* p, uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (*p & 0x80) {
    out |= static_cast<uint64_t>(*p & 0x7f) << shift;
    shift += 7;
    ++p;
  }
  out |= static_cast<uint64_t>(*p) << shift;
  *v = out;
  return p + 1;
}

// --- bit packing ----------------------------------------------------------

// Bits needed to represent `v` (0 for v == 0).
int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

// Appends values packed at `width` bits each, LSB-first within a little-
// endian bit stream, byte-aligned at the end so streams concatenate.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}

  void Put(uint64_t v, int width) {
    acc_ |= v << filled_;
    filled_ += width;
    while (filled_ >= 8) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void Align() {
    if (filled_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::vector<uint8_t>* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const uint8_t* data) : p_(data) {}

  uint64_t Get(int width) {
    while (filled_ < width) {
      acc_ |= static_cast<uint64_t>(*p_++) << filled_;
      filled_ += 8;
    }
    const uint64_t mask =
        width == 64 ? ~0ull : (1ull << width) - 1;
    const uint64_t v = acc_ & mask;
    acc_ >>= width;
    filled_ -= width;
    return v;
  }

  void Align() {
    acc_ = 0;
    filled_ = 0;
  }

  const uint8_t* position() const { return p_; }

 private:
  const uint8_t* p_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

size_t PackedBytes(size_t values, int width) {
  return (values * static_cast<size_t>(width) + 7) / 8;
}

// Component views of the successor stream: delta of the graph id against
// the predecessor posting, plus the raw start/end node ids.
struct Components {
  uint32_t dg;
  uint32_t start;
  uint32_t end;
};

Components ComponentsAt(const Posting* postings, size_t i) {
  return Components{postings[i].graph() - postings[i - 1].graph(),
                    static_cast<uint32_t>(postings[i].start()),
                    static_cast<uint32_t>(postings[i].end())};
}

// --- varint codec ---------------------------------------------------------

class VarintCodec final : public PostingCodec {
 public:
  PostingCodecId id() const override { return PostingCodecId::kVarint; }

  void Encode(const Posting* postings, size_t count,
              std::vector<uint8_t>* out) const override {
    for (size_t i = 1; i < count; ++i) {
      const Components c = ComponentsAt(postings, i);
      PutVarint(c.dg, out);
      PutVarint(c.start, out);
      PutVarint(c.end, out);
    }
  }

  size_t EncodedBytes(const Posting* postings, size_t count) const override {
    size_t bytes = 0;
    for (size_t i = 1; i < count; ++i) {
      const Components c = ComponentsAt(postings, i);
      bytes += VarintBytes(c.dg) + VarintBytes(c.start) + VarintBytes(c.end);
    }
    return bytes;
  }

  size_t Decode(const uint8_t* data, Posting first, size_t count,
                Posting* out) const override {
    const uint8_t* p = data;
    out[0] = first;
    GraphId graph = first.graph();
    for (size_t i = 1; i < count; ++i) {
      uint64_t dg, start, end;
      p = GetVarint(p, &dg);
      p = GetVarint(p, &start);
      p = GetVarint(p, &end);
      graph += static_cast<GraphId>(dg);
      out[i] = Posting(graph, static_cast<int>(start), static_cast<int>(end));
    }
    return static_cast<size_t>(p - data);
  }

  double DecodeCost() const override { return 1.5; }
};

// --- frame-of-reference bit packing ---------------------------------------

// Layout: header {wg, ws, we} (one byte each), then the dg stream packed
// at wg bits (byte-aligned), then starts at ws, then ends at we.
class ForPackedCodec final : public PostingCodec {
 public:
  PostingCodecId id() const override { return PostingCodecId::kForPacked; }

  void Encode(const Posting* postings, size_t count,
              std::vector<uint8_t>* out) const override {
    if (count <= 1) return;
    int wg, ws, we;
    Widths(postings, count, &wg, &ws, &we);
    out->push_back(static_cast<uint8_t>(wg));
    out->push_back(static_cast<uint8_t>(ws));
    out->push_back(static_cast<uint8_t>(we));
    BitWriter writer(out);
    for (size_t i = 1; i < count; ++i) {
      writer.Put(ComponentsAt(postings, i).dg, wg);
    }
    writer.Align();
    for (size_t i = 1; i < count; ++i) {
      writer.Put(ComponentsAt(postings, i).start, ws);
    }
    writer.Align();
    for (size_t i = 1; i < count; ++i) {
      writer.Put(ComponentsAt(postings, i).end, we);
    }
    writer.Align();
  }

  size_t EncodedBytes(const Posting* postings, size_t count) const override {
    if (count <= 1) return 0;
    int wg, ws, we;
    Widths(postings, count, &wg, &ws, &we);
    return 3 + PackedBytes(count - 1, wg) + PackedBytes(count - 1, ws) +
           PackedBytes(count - 1, we);
  }

  size_t Decode(const uint8_t* data, Posting first, size_t count,
                Posting* out) const override {
    out[0] = first;
    if (count <= 1) return 0;
    const int wg = data[0], ws = data[1], we = data[2];
    BitReader reader(data + 3);
    GraphId graph = first.graph();
    for (size_t i = 1; i < count; ++i) {
      graph += static_cast<GraphId>(reader.Get(wg));
      out[i] = Posting::FromBits(static_cast<uint64_t>(graph) << 32);
    }
    reader.Align();
    for (size_t i = 1; i < count; ++i) {
      out[i] = Posting::FromBits(out[i].bits() | reader.Get(ws) << 16);
    }
    reader.Align();
    for (size_t i = 1; i < count; ++i) {
      out[i] = Posting::FromBits(out[i].bits() | reader.Get(we));
    }
    reader.Align();
    return 3 + PackedBytes(count - 1, wg) + PackedBytes(count - 1, ws) +
           PackedBytes(count - 1, we);
  }

  double DecodeCost() const override { return 1.0; }

 private:
  static void Widths(const Posting* postings, size_t count, int* wg, int* ws,
                     int* we) {
    uint32_t max_dg = 0, max_s = 0, max_e = 0;
    for (size_t i = 1; i < count; ++i) {
      const Components c = ComponentsAt(postings, i);
      max_dg = std::max(max_dg, c.dg);
      max_s = std::max(max_s, c.start);
      max_e = std::max(max_e, c.end);
    }
    *wg = BitWidth(max_dg);
    *ws = BitWidth(max_s);
    *we = BitWidth(max_e);
  }
};

}  // namespace

const PostingCodec& PostingCodec::Get(PostingCodecId id) {
  static const VarintCodec varint;
  static const ForPackedCodec for_packed;
  switch (id) {
    case PostingCodecId::kVarint:
      return varint;
    case PostingCodecId::kForPacked:
      return for_packed;
  }
  USTL_CHECK(false);
  return varint;
}

PostingCodecId ChoosePostingCodec(const Posting* postings, size_t count,
                                  size_t* encoded_bytes) {
  constexpr PostingCodecId kAll[] = {PostingCodecId::kVarint,
                                     PostingCodecId::kForPacked};
  PostingCodecId best = PostingCodecId::kVarint;
  size_t best_bytes = 0;
  double best_score = 0.0;
  bool first = true;
  for (PostingCodecId id : kAll) {
    const PostingCodec& codec = PostingCodec::Get(id);
    const size_t bytes = codec.EncodedBytes(postings, count);
    const double score =
        static_cast<double>(bytes) +
        codec.DecodeCost() * static_cast<double>(count > 0 ? count - 1 : 0);
    // Strict < keeps ties on the lower id: the model is a total order, so
    // the per-block choice is deterministic everywhere.
    if (first || score < best_score) {
      first = false;
      best = id;
      best_bytes = bytes;
      best_score = score;
    }
  }
  if (encoded_bytes != nullptr) *encoded_bytes = best_bytes;
  return best;
}

}  // namespace ustl

// Inverted index over edge labels (Section 5.1). The posting list of a
// string function f holds every triple (graph, i, j) such that the edge
// e(i,j) of that graph carries label f. Intersecting lists joins adjacent
// edges: (G, a, b) from the current path list combines with (G, b, c) from
// the label list to give (G, a, c), so the intersection of the lists of
// f1 .. fk is exactly the set of spans where the path f1 (+) ... (+) fk
// matches.
#ifndef USTL_INDEX_INVERTED_INDEX_H_
#define USTL_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/transformation_graph.h"

namespace ustl {

/// One occurrence of a path: it spans nodes [start, end] of `graph`.
struct Posting {
  GraphId graph = 0;
  int start = 0;
  int end = 0;

  bool operator==(const Posting& o) const {
    return graph == o.graph && start == o.start && end == o.end;
  }
  bool operator<(const Posting& o) const {
    if (graph != o.graph) return graph < o.graph;
    if (start != o.start) return start < o.start;
    return end < o.end;
  }
};

/// Sorted by (graph, start, end), unique.
using PostingList = std::vector<Posting>;

/// Immutable label -> posting-list map over a set of graphs.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes every (edge, label) pair of every graph. Graph ids are the
  /// positions in `graphs`.
  static InvertedIndex Build(const std::vector<TransformationGraph>& graphs);

  /// The posting list for `label`; empty if the label never occurs.
  const PostingList& Find(LabelId label) const;

  /// |I[label]|, used for the upper bounds of Section 6.2.
  size_t ListLength(LabelId label) const;

  /// Number of labels with non-empty lists.
  size_t NumLabels() const;

  /// Adjacency join described above. `alive` (indexed by GraphId) filters
  /// dead graphs out of the result; pass nullptr to keep everything.
  static PostingList Extend(const PostingList& current,
                            const PostingList& label_list,
                            const std::vector<char>* alive);

  /// Number of distinct graphs appearing in a sorted posting list.
  static size_t DistinctGraphs(const PostingList& list);

 private:
  static const PostingList kEmpty;
  std::vector<PostingList> lists_;  // indexed by LabelId
};

}  // namespace ustl

#endif  // USTL_INDEX_INVERTED_INDEX_H_

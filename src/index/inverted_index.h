// Inverted index over edge labels (Section 5.1). The posting list of a
// string function f holds every triple (graph, i, j) such that the edge
// e(i,j) of that graph carries label f. Intersecting lists joins adjacent
// edges: (G, a, b) from the current path list combines with (G, b, c) from
// the label list to give (G, a, c), so the intersection of the lists of
// f1 .. fk is exactly the set of spans where the path f1 (+) ... (+) fk
// matches.
//
// Postings are bit-packed into one 64-bit word (graph | start | end,
// most-significant first), so a PostingList is a flat cache-dense array
// whose numeric word order IS the canonical (graph, start, end) posting
// order. The hot-path join is ExtendInto: it writes into a caller-owned
// scratch list (no allocation in the steady state) and fuses the
// distinct-graph count and a content hash into the merge so callers never
// re-scan the output. Build shards the posting lists by label range over
// a ThreadPool; every label's list is filled by exactly one shard in the
// serial iteration order, so the index is bit-identical for any shard or
// thread count.
#ifndef USTL_INDEX_INVERTED_INDEX_H_
#define USTL_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "graph/transformation_graph.h"

namespace ustl {

class ThreadPool;
class BlockPostingStore;

/// One occurrence of a path: it spans nodes [start, end] of `graph`.
/// Packed as graph (32 bits) | start (16) | end (16); the field order
/// makes uint64 comparison equal to lexicographic (graph, start, end)
/// comparison. Node ids are 1 .. |t|+1, so targets are capped at
/// kMaxNode - 1 characters (enforced once per graph in Build).
class Posting {
 public:
  static constexpr GraphId kMaxGraph = 0xffffffffu;
  static constexpr int kMaxNode = 0xffff;

  Posting() = default;
  constexpr Posting(GraphId graph, int start, int end)
      : bits_((static_cast<uint64_t>(graph) << 32) |
              (static_cast<uint64_t>(start & kMaxNode) << 16) |
              static_cast<uint64_t>(end & kMaxNode)) {}

  constexpr GraphId graph() const { return static_cast<GraphId>(bits_ >> 32); }
  constexpr int start() const {
    return static_cast<int>((bits_ >> 16) & kMaxNode);
  }
  constexpr int end() const { return static_cast<int>(bits_ & kMaxNode); }

  /// The raw packed word; also the per-posting unit of the ExtendStats
  /// content hash.
  constexpr uint64_t bits() const { return bits_; }

  /// The adjacency-join product of two postings of the same graph: keeps
  /// a's graph and start, takes b's end. Caller guarantees
  /// a.graph() == b.graph() and a.end() == b.start().
  static constexpr Posting Join(Posting a, Posting b) {
    return FromBits((a.bits_ & ~static_cast<uint64_t>(kMaxNode)) |
                    (b.bits_ & static_cast<uint64_t>(kMaxNode)));
  }

  static constexpr Posting FromBits(uint64_t bits) {
    Posting p;
    p.bits_ = bits;
    return p;
  }

  constexpr bool operator==(const Posting& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const Posting& o) const { return bits_ != o.bits_; }
  constexpr bool operator<(const Posting& o) const { return bits_ < o.bits_; }

 private:
  uint64_t bits_ = 0;
};

static_assert(sizeof(Posting) == sizeof(uint64_t),
              "postings must stay packed one-word");

/// Sorted by (graph, start, end) — equivalently by packed bits — unique.
using PostingList = std::vector<Posting>;

/// FNV-1a parameters of the posting content hash.
inline constexpr uint64_t kPostingHashSeed = 14695981039346656037ull;
inline constexpr uint64_t kPostingHashPrime = 1099511628211ull;

/// Byproducts of ExtendInto, computed inside the merge join at no extra
/// pass over the output: the number of distinct graphs in the result and
/// an order-dependent FNV-1a hash of its packed words. Equal lists always
/// hash equal, so the hash serves as the sibling-dedup key of pivot
/// search (backed by a full compare to rule out collisions).
struct ExtendStats {
  size_t distinct_graphs = 0;
  uint64_t hash = kPostingHashSeed;
};

/// Below this label-range size, Build's automatic shard count (num_shards
/// == 0) stays single-shard: the per-shard full scans dominate the split
/// posting writes. Tuned against the 4.8k-label address workload, where
/// auto-sharding ran 0.39x serial speed.
inline constexpr size_t kAutoShardMinLabels = 1 << 14;

/// Posting storage of an index. kRaw keeps every list as the flat packed
/// uint64 array above — the default until the block layer's byte-compare
/// legs have run everywhere. kBlock re-encodes the lists into the
/// compressed, skippable BlockPostingStore (block_postings.h). Joins are
/// byte-identical either way; the codec moves memory and skip statistics
/// only.
enum class IndexCodec : uint8_t {
  kRaw = 0,
  kBlock = 1,
};

/// Partitioning knobs of the kBlock layout (see block_postings.h).
struct BlockPostingsOptions {
  /// Preferred postings per block; blocks close at the first graph-run
  /// boundary past it. Skip granularity and decode latency both scale
  /// with this.
  size_t target_block_size = 128;
  /// Hard cap a greedy merge may not cross (single oversized graph runs
  /// still get one block — runs never straddle blocks).
  size_t max_block_size = 512;
  /// Lists of at most this many postings stay raw in a shared word
  /// arena: codec headers lose to the data at those sizes, and the
  /// address-style corpora are dominated by such lists.
  size_t small_list_cutoff = 4;
  /// Greedy partitioning: additionally close a block early when the
  /// frame-of-reference cost of merging the next graph run exceeds the
  /// cost of a split. Off = fixed target-size blocks.
  bool greedy_partition = true;
};

struct IndexBuildOptions {
  IndexCodec codec = IndexCodec::kRaw;
  BlockPostingsOptions block;
};

/// A borrowed view of one label's postings, raw or block-compressed.
/// Raw-mode indexes (and the small lists of block mode) expose a direct
/// span; blocked lists carry the store + label handle and are decoded
/// block-by-block inside ExtendInto.
struct PostingsRef {
  const Posting* data = nullptr;          // raw span when store == nullptr
  size_t count = 0;                       // total postings either way
  const BlockPostingStore* store = nullptr;
  LabelId label = 0;

  size_t size() const { return count; }
  bool blocked() const { return store != nullptr; }
};

/// Skip/prune contract of the block-aware ExtendInto overload. Inputs
/// feed the pivot-search thresholds down into the join; outputs report
/// what the block cursor did. The skip rules never change a byte of
/// output: a block is skipped on graph bounds only when it provably
/// intersects nothing, and the threshold prune only abandons joins whose
/// full result the caller would discard against the same thresholds —
/// `pruned` tells the caller to do exactly that.
struct ExtendControl {
  /// Smallest distinct-graph count the caller would accept (max of the
  /// local best-so-far + 1 and the global Glo bound). 0 disables the
  /// prune; graph-bound skipping stays on.
  int min_distinct = 0;
  /// Distinct graphs in `current` (callers get it fused from the join
  /// that produced the list); caps what any suffix can still add.
  size_t current_distinct = std::numeric_limits<size_t>::max();
  /// Caller-owned decode arena for blocked lists (capacity is retained
  /// across joins, so the steady state stays allocation-free). Required
  /// when the list is blocked.
  PostingList* decode_scratch = nullptr;

  /// True when the join was abandoned because the distinct upper bound
  /// fell below min_distinct; the output list is partial and must be
  /// discarded (the caller's threshold checks would have discarded the
  /// full result anyway).
  bool pruned = false;
  uint64_t blocks_skipped = 0;
  uint64_t blocks_decoded = 0;
};

/// Immutable label -> posting-list map over a set of graphs.
class InvertedIndex {
 public:
  InvertedIndex();
  ~InvertedIndex();
  InvertedIndex(InvertedIndex&&) noexcept;
  InvertedIndex& operator=(InvertedIndex&&) noexcept;

  /// Indexes every (edge, label) pair of every graph. Graph ids are the
  /// positions in `graphs`. A non-null `pool` builds label-range shards
  /// concurrently; the result is bit-identical for every (pool,
  /// num_shards) combination because each label's list is produced by
  /// exactly one shard in the serial iteration order. `num_shards` 0
  /// picks one shard per pool thread, falling back to the serial
  /// single-shard path when the pool is null or busy (nested call) or
  /// the label range is below kAutoShardMinLabels — sharding pays one
  /// full graph scan per shard, which loses on small inputs. An explicit
  /// num_shards is always honored. `num_labels_hint` (e.g. the interner
  /// size) skips the pre-sizing scan when the caller already knows an
  /// upper bound on label ids; 0 means "scan for the maximum".
  static InvertedIndex Build(const std::vector<TransformationGraph>& graphs,
                             ThreadPool* pool = nullptr,
                             size_t num_shards = 0,
                             size_t num_labels_hint = 0,
                             const IndexBuildOptions& build_options = {});

  /// The posting list for `label`; empty if the label never occurs.
  /// Raw-codec indexes only — block-mode lists have no flat array to
  /// return (use Postings / Materialize).
  const PostingList& Find(LabelId label) const;

  /// Codec-agnostic view of `label`'s postings, the hot-path handle the
  /// searchers join through.
  PostingsRef Postings(LabelId label) const;

  /// Whole-list decode into a caller buffer; works for both codecs (raw
  /// copies). Cold paths and tests.
  void Materialize(LabelId label, PostingList* out) const;

  /// |I[label]|, used for the upper bounds of Section 6.2.
  size_t ListLength(LabelId label) const;

  /// Number of labels with non-empty lists.
  size_t NumLabels() const;

  IndexCodec codec() const { return codec_; }

  /// Posting-data resident bytes (raw arrays, or the block store's
  /// payload + directory + word arenas) and total postings — the
  /// compression bench's numerator and denominator.
  size_t MemoryBytes() const;
  size_t NumPostings() const;

  /// The block store when codec() == kBlock, else null (detail stats).
  const BlockPostingStore* store() const { return store_.get(); }

  /// Adjacency join described above, written into the caller-owned `*out`
  /// (cleared first; its capacity is reused, so a scratch list makes
  /// repeated joins allocation-free in the steady state). `alive`
  /// (indexed by GraphId) filters dead graphs out of the result; pass
  /// nullptr to keep everything. `out` must alias neither input. The
  /// returned stats are fused into the join: no separate DistinctGraphs
  /// or hashing pass over `*out` is ever needed.
  static ExtendStats ExtendInto(const PostingList& current,
                                const PostingList& label_list,
                                const std::vector<char>* alive,
                                PostingList* out);

  /// The codec-agnostic join. Raw spans run the exact merge above;
  /// blocked lists run a block cursor that skips blocks whose graph
  /// bounds miss `current` entirely, prunes the join once the distinct
  /// upper bound drops below control->min_distinct, and decodes the
  /// survivors into control->decode_scratch (zero allocations once the
  /// scratch capacities warm up). `control` may be null for raw spans;
  /// skip/prune then stay off and this is exactly the overload above.
  static ExtendStats ExtendInto(const PostingList& current,
                                const PostingsRef& label_list,
                                const std::vector<char>* alive,
                                PostingList* out,
                                ExtendControl* control = nullptr);

  /// Allocating convenience wrapper around ExtendInto for cold paths and
  /// tests.
  static PostingList Extend(const PostingList& current,
                            const PostingList& label_list,
                            const std::vector<char>* alive);

  /// Ref-taking wrapper (allocates its own decode scratch; cold paths).
  static PostingList Extend(const PostingList& current,
                            const PostingsRef& label_list,
                            const std::vector<char>* alive);

  /// Number of distinct graphs appearing in a sorted posting list. Hot
  /// callers get this for free from ExtendInto's fused stats.
  static size_t DistinctGraphs(const PostingList& list);

 private:
  static const PostingList kEmpty;
  std::vector<PostingList> lists_;  // indexed by LabelId (kRaw)
  std::unique_ptr<BlockPostingStore> store_;  // kBlock
  IndexCodec codec_ = IndexCodec::kRaw;
};

}  // namespace ustl

#endif  // USTL_INDEX_INVERTED_INDEX_H_

// Per-block posting codecs (PISA-style, cf. the maskedvbyte / simdbp
// split there). A block stores its first posting raw in the block
// metadata; the codec encodes the remaining postings as three component
// streams — graph-id deltas against the predecessor (sorted lists make
// them non-negative and usually tiny), plus the raw start and end node
// ids (16-bit values that do not grow monotonically, so they are stored
// as values, not deltas). Splitting the packed uint64 into components is
// what makes compression work: a whole-word delta across a graph
// boundary jumps by 2^32, while the component streams stay narrow.
//
// Two codecs ship behind the PostingCodec interface (SIMD decoders slot
// in later by adding an id):
//   * kVarint — LEB128 per component; byte-aligned, cheap to decode,
//     best for skewed deltas.
//   * kForPacked — frame-of-reference bit packing: a 3-byte header with
//     the per-stream bit widths, then each stream packed at its width;
//     best when components are uniformly narrow (the common case).
// ChoosePostingCodec picks per block by encoded size plus a relative
// decode-cost penalty, so a marginal size win never buys a slower
// decode. The choice is a pure function of the block's postings —
// deterministic across builds, threads and shard counts.
#ifndef USTL_INDEX_POSTING_CODEC_H_
#define USTL_INDEX_POSTING_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/inverted_index.h"

namespace ustl {

enum class PostingCodecId : uint8_t {
  kVarint = 0,
  kForPacked = 1,
};

/// Stateless encoder/decoder for one block of postings. `postings[0]` is
/// never encoded — block metadata keeps it raw — so all methods work on
/// the count - 1 successors and their deltas.
class PostingCodec {
 public:
  virtual ~PostingCodec() = default;

  virtual PostingCodecId id() const = 0;

  /// Appends the encoding of postings[1 .. count) to `*out`. `postings`
  /// must be sorted and unique (posting order).
  virtual void Encode(const Posting* postings, size_t count,
                      std::vector<uint8_t>* out) const = 0;

  /// Exact byte size Encode would append, without writing anything.
  virtual size_t EncodedBytes(const Posting* postings,
                              size_t count) const = 0;

  /// Decodes a block: writes `count` postings into out[0 .. count),
  /// out[0] == first. Returns the payload bytes consumed.
  virtual size_t Decode(const uint8_t* data, Posting first, size_t count,
                        Posting* out) const = 0;

  /// Relative decode cost per posting, in "equivalent payload bytes" —
  /// the currency of the selection model below. Varint pays branchy
  /// per-byte work; FOR unpacking is branchless shifts.
  virtual double DecodeCost() const = 0;

  /// The singleton codec for `id` (codecs are stateless).
  static const PostingCodec& Get(PostingCodecId id);
};

/// The size/decode-cost selection model: scores every codec as
/// EncodedBytes + DecodeCost * (count - 1) and returns the minimum
/// (ties to the lower codec id, so the choice is total). When
/// `encoded_bytes` is non-null it receives the winner's exact size, so
/// the caller never re-measures.
PostingCodecId ChoosePostingCodec(const Posting* postings, size_t count,
                                  size_t* encoded_bytes = nullptr);

}  // namespace ustl

#endif  // USTL_INDEX_POSTING_CODEC_H_

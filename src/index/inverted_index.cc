#include "index/inverted_index.h"

#include <algorithm>

#include "common/status.h"

namespace ustl {

const PostingList InvertedIndex::kEmpty;

InvertedIndex InvertedIndex::Build(
    const std::vector<TransformationGraph>& graphs) {
  InvertedIndex index;
  for (GraphId g = 0; g < graphs.size(); ++g) {
    const TransformationGraph& graph = graphs[g];
    for (int from = 1; from <= graph.num_nodes(); ++from) {
      for (const GraphEdge& edge : graph.edges_from(from)) {
        for (LabelId label : edge.labels) {
          if (label >= index.lists_.size()) index.lists_.resize(label + 1);
          index.lists_[label].push_back(Posting{g, from, edge.to});
        }
      }
    }
  }
  // Iteration order above is (graph asc, from asc, to asc), which is the
  // posting order; no per-list sort needed. Assert in debug builds.
  for (const PostingList& list : index.lists_) {
    USTL_CHECK(std::is_sorted(list.begin(), list.end()));
  }
  return index;
}

const PostingList& InvertedIndex::Find(LabelId label) const {
  if (label >= lists_.size()) return kEmpty;
  return lists_[label];
}

size_t InvertedIndex::ListLength(LabelId label) const {
  return Find(label).size();
}

size_t InvertedIndex::NumLabels() const {
  size_t count = 0;
  for (const PostingList& list : lists_) {
    if (!list.empty()) ++count;
  }
  return count;
}

namespace {

// First index >= i whose posting's graph id is >= g (galloping: doubling
// probe then binary search). Keeps the merge join linear on balanced
// inputs and logarithmic when one list is much shorter than the other —
// the common shape once sampling or deep paths shrink the current list.
size_t GallopTo(const PostingList& list, size_t i, GraphId g) {
  if (i >= list.size() || list[i].graph >= g) return i;
  size_t lo = i;  // invariant: list[lo].graph < g
  size_t step = 1;
  size_t hi = i + step;
  while (hi < list.size() && list[hi].graph < g) {
    lo = hi;
    step <<= 1;
    hi = lo + step;
  }
  if (hi > list.size()) hi = list.size();
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (list[mid].graph < g) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

PostingList InvertedIndex::Extend(const PostingList& current,
                                  const PostingList& label_list,
                                  const std::vector<char>* alive) {
  PostingList out;
  // Merge join on graph id; within one graph, pair (a, b) x (b, c).
  size_t i = 0, j = 0;
  while (i < current.size() && j < label_list.size()) {
    GraphId gi = current[i].graph;
    GraphId gj = label_list[j].graph;
    if (gi < gj) {
      i = GallopTo(current, i, gj);
      continue;
    }
    if (gj < gi) {
      j = GallopTo(label_list, j, gi);
      continue;
    }
    if (alive != nullptr && !(*alive)[gi]) {
      while (i < current.size() && current[i].graph == gi) ++i;
      while (j < label_list.size() && label_list[j].graph == gi) ++j;
      continue;
    }
    size_t i_end = i;
    while (i_end < current.size() && current[i_end].graph == gi) ++i_end;
    size_t j_end = j;
    while (j_end < label_list.size() && label_list[j_end].graph == gi) ++j_end;
    // Both runs are small in practice; a nested loop keeps this simple and
    // cache-friendly.
    for (size_t a = i; a < i_end; ++a) {
      for (size_t b = j; b < j_end; ++b) {
        if (current[a].end == label_list[b].start) {
          out.push_back(Posting{gi, current[a].start, label_list[b].end});
        }
      }
    }
    i = i_end;
    j = j_end;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t InvertedIndex::DistinctGraphs(const PostingList& list) {
  size_t count = 0;
  GraphId prev = 0;
  bool first = true;
  for (const Posting& p : list) {
    if (first || p.graph != prev) {
      ++count;
      prev = p.graph;
      first = false;
    }
  }
  return count;
}

}  // namespace ustl

#include "index/inverted_index.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/status.h"
#include "index/block_postings.h"

namespace ustl {

const PostingList InvertedIndex::kEmpty;

// Out of line for the unique_ptr<BlockPostingStore> member (the header
// only forward-declares the store).
InvertedIndex::InvertedIndex() = default;
InvertedIndex::~InvertedIndex() = default;
InvertedIndex::InvertedIndex(InvertedIndex&&) noexcept = default;
InvertedIndex& InvertedIndex::operator=(InvertedIndex&&) noexcept = default;

InvertedIndex InvertedIndex::Build(
    const std::vector<TransformationGraph>& graphs, ThreadPool* pool,
    size_t num_shards, size_t num_labels_hint,
    const IndexBuildOptions& build_options) {
  InvertedIndex index;
  // Field-width guards of the packed layout: graph ids fit 32 bits, node
  // ids 16. One cheap check per graph, kept in release builds because the
  // limits are input-dependent (a >64KiB target would silently corrupt
  // packed postings otherwise).
  USTL_CHECK(graphs.size() <= static_cast<size_t>(Posting::kMaxGraph) + 1);
  for (const TransformationGraph& graph : graphs) {
    USTL_CHECK(graph.num_nodes() <= Posting::kMaxNode);
  }

  // Single pre-sizing pass: lists_ is resized exactly once, so shard
  // construction never moves the vector-of-vectors. The bound comes from
  // the interner when the caller knows it, else from one scan over the
  // graphs (parallel over graphs; reduced in index order).
  size_t num_labels = num_labels_hint;
  if (num_labels == 0) {
    std::vector<size_t> bounds =
        ParallelMap<size_t>(pool, graphs.size(), [&](size_t g) {
          size_t bound = 0;
          const TransformationGraph& graph = graphs[g];
          for (int from = 1; from <= graph.num_nodes(); ++from) {
            for (const GraphEdge& edge : graph.edges_from(from)) {
              for (LabelId label : edge.labels) {
                bound = std::max(bound, static_cast<size_t>(label) + 1);
              }
            }
          }
          return bound;
        });
    for (size_t bound : bounds) num_labels = std::max(num_labels, bound);
  }
  if (num_labels == 0) {
    // Still honor the codec request so an empty index reports the mode
    // it was built with.
    if (build_options.codec == IndexCodec::kBlock) {
      index.store_ = std::make_unique<BlockPostingStore>();
      index.codec_ = IndexCodec::kBlock;
    }
    return index;
  }
  index.lists_.resize(num_labels);

  size_t shards = num_shards;
  if (shards == 0) {
    // One shard per pool thread; nested calls (already on a pool worker)
    // would run the shards serially and only pay the per-shard scan S
    // times over, so they stay single-shard.
    shards = pool != nullptr && !pool->InWorkerThread()
                 ? static_cast<size_t>(pool->num_threads())
                 : 1;
    // Every shard walks ALL graphs twice (count + fill) and only filters
    // by label range, so S shards cost ~S serial scans split over the
    // pool — a wash at best, and a regression once the task overhead
    // outweighs the posting writes (0.39x on a 4.8k-label input, see
    // BENCH_2026-07-31_posting_kernel.json). Small label ranges take the
    // serial path; explicit num_shards requests are honored as-is (the
    // bit-identity sweeps in tests rely on that).
    if (num_labels < kAutoShardMinLabels) shards = 1;
  }
  shards = std::max<size_t>(1, std::min(shards, num_labels));

  // Each shard owns the contiguous label range [lo, hi) and fills only
  // those lists, walking the graphs in the same (graph asc, from asc,
  // to asc, label asc) order as a serial build would. Shards touch
  // disjoint lists_ entries, so this is scheduling-only parallelism and
  // the result is bit-identical for any shard count. A count pass sizes
  // every list exactly before the fill pass, so lists never reallocate.
  ParallelFor(pool, shards, [&](size_t s) {
    const size_t lo = num_labels * s / shards;
    const size_t hi = num_labels * (s + 1) / shards;
    std::vector<size_t> counts(hi - lo, 0);
    for (const TransformationGraph& graph : graphs) {
      for (int from = 1; from <= graph.num_nodes(); ++from) {
        for (const GraphEdge& edge : graph.edges_from(from)) {
          for (LabelId label : edge.labels) {
            // A hint below the real maximum would silently drop every
            // posting of the labels past it; catch that contract break in
            // debug builds.
            USTL_DCHECK(static_cast<size_t>(label) < num_labels);
            if (label >= lo && label < hi) ++counts[label - lo];
          }
        }
      }
    }
    for (size_t label = lo; label < hi; ++label) {
      index.lists_[label].reserve(counts[label - lo]);
    }
    for (GraphId g = 0; g < graphs.size(); ++g) {
      const TransformationGraph& graph = graphs[g];
      for (int from = 1; from <= graph.num_nodes(); ++from) {
        for (const GraphEdge& edge : graph.edges_from(from)) {
          for (LabelId label : edge.labels) {
            if (label >= lo && label < hi) {
              index.lists_[label].push_back(Posting(g, from, edge.to));
            }
          }
        }
      }
    }
  });

  // Canonicalize the layout: trailing empty lists (possible when the hint
  // over-estimates the largest used label) are trimmed, so hint and scan
  // paths produce identical indexes.
  while (!index.lists_.empty() && index.lists_.back().empty()) {
    index.lists_.pop_back();
  }

  // Iteration order above is (graph asc, from asc, to asc), which is the
  // posting order; no per-list sort needed. Debug builds assert it — the
  // scan is O(total postings), so it stays out of release builds.
  for (const PostingList& list : index.lists_) {
    USTL_DCHECK(std::is_sorted(list.begin(), list.end()));
    (void)list;
  }

  // Block codec: re-encode the freshly built raw lists into the arena
  // store and drop them. Encoding is a pure per-list function of the
  // (bit-identical) raw lists, so the store is itself bit-identical for
  // any pool/shard count; peak memory is raw + one label above the
  // compressed size (lists are released as they encode).
  if (build_options.codec == IndexCodec::kBlock) {
    index.store_ = std::make_unique<BlockPostingStore>(
        BlockPostingStore::Encode(std::move(index.lists_),
                                  build_options.block));
    index.lists_ = std::vector<PostingList>();
    index.codec_ = IndexCodec::kBlock;
  }
  return index;
}

const PostingList& InvertedIndex::Find(LabelId label) const {
  // Block-mode lists have no flat array to hand out; a caller reaching
  // for one is a bug, not a fallback case.
  USTL_CHECK(codec_ == IndexCodec::kRaw);
  if (label >= lists_.size()) return kEmpty;
  return lists_[label];
}

PostingsRef InvertedIndex::Postings(LabelId label) const {
  PostingsRef ref;
  if (codec_ == IndexCodec::kRaw) {
    const PostingList& list = Find(label);
    ref.data = list.data();
    ref.count = list.size();
    return ref;
  }
  const BlockPostingStore::LabelRef& entry = store_->label(label);
  ref.count = entry.count;
  ref.label = label;
  if (entry.num_blocks == 0) {
    ref.data = store_->SmallSpan(entry);  // raw arena span
  } else {
    ref.store = store_.get();
  }
  return ref;
}

void InvertedIndex::Materialize(LabelId label, PostingList* out) const {
  if (codec_ == IndexCodec::kRaw) {
    *out = Find(label);
    return;
  }
  store_->Materialize(label, out);
}

size_t InvertedIndex::ListLength(LabelId label) const {
  if (codec_ == IndexCodec::kRaw) {
    return label < lists_.size() ? lists_[label].size() : 0;
  }
  return store_->label(label).count;
}

size_t InvertedIndex::NumLabels() const {
  size_t count = 0;
  if (codec_ == IndexCodec::kRaw) {
    for (const PostingList& list : lists_) {
      if (!list.empty()) ++count;
    }
    return count;
  }
  for (size_t label = 0; label < store_->num_labels(); ++label) {
    if (store_->label(static_cast<LabelId>(label)).count > 0) ++count;
  }
  return count;
}

size_t InvertedIndex::MemoryBytes() const {
  if (codec_ == IndexCodec::kBlock) return store_->memory().total_bytes();
  size_t bytes = lists_.size() * sizeof(PostingList);
  for (const PostingList& list : lists_) {
    bytes += list.size() * sizeof(Posting);
  }
  return bytes;
}

size_t InvertedIndex::NumPostings() const {
  if (codec_ == IndexCodec::kBlock) return store_->memory().postings;
  size_t count = 0;
  for (const PostingList& list : lists_) count += list.size();
  return count;
}

namespace {

// First index >= i whose posting's graph id is >= g (galloping: doubling
// probe then binary search). Keeps the merge join linear on balanced
// inputs and logarithmic when one list is much shorter than the other —
// the common shape once sampling or deep paths shrink the current list.
size_t GallopTo(const Posting* list, size_t n, size_t i, GraphId g) {
  if (i >= n || list[i].graph() >= g) return i;
  size_t lo = i;  // invariant: list[lo].graph() < g
  size_t step = 1;
  size_t hi = i + step;
  while (hi < n && list[hi].graph() < g) {
    lo = hi;
    step <<= 1;
    hi = lo + step;
  }
  if (hi > n) hi = n;
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (list[mid].graph() < g) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

// The merge-join core over one contiguous span of the label list.
// Resumable: `*i` is the cursor into `current`, carried across spans so
// the block cursor can feed one block at a time; stats and `out`
// accumulate. Blocks are graph-aligned (block_postings.h), so each call
// sees whole graph runs and the run-local sort/dedup/hash below is
// byte-identical to a single call over the whole list.
void MergeSpan(const PostingList& current, size_t* i, const Posting* span,
               size_t n, const std::vector<char>* alive, PostingList* out,
               ExtendStats* stats) {
  // Merge join on graph id; within one graph, pair (a, b) x (b, c).
  size_t j = 0;
  while (*i < current.size() && j < n) {
    const GraphId gi = current[*i].graph();
    const GraphId gj = span[j].graph();
    if (gi < gj) {
      *i = GallopTo(current.data(), current.size(), *i, gj);
      continue;
    }
    if (gj < gi) {
      j = GallopTo(span, n, j, gi);
      continue;
    }
    if (alive != nullptr && !(*alive)[gi]) {
      while (*i < current.size() && current[*i].graph() == gi) ++*i;
      while (j < n && span[j].graph() == gi) ++j;
      continue;
    }
    size_t i_end = *i;
    while (i_end < current.size() && current[i_end].graph() == gi) ++i_end;
    size_t j_end = j;
    while (j_end < n && span[j_end].graph() == gi) ++j_end;
    // Both runs are small in practice; a nested loop keeps this simple and
    // cache-friendly.
    const size_t run_begin = out->size();
    for (size_t a = *i; a < i_end; ++a) {
      for (size_t b = j; b < j_end; ++b) {
        if (current[a].end() == span[b].start()) {
          out->push_back(Posting::Join(current[a], span[b]));
        }
      }
    }
    if (out->size() > run_begin) {
      // Graph runs are emitted in ascending graph order, so sorting and
      // deduplicating each run locally (runs are tiny) leaves the whole
      // list sorted + unique — no full-list sort pass. Distinct count and
      // content hash fold in here, while the run is cache-hot.
      if (out->size() - run_begin > 1) {
        std::sort(out->begin() + run_begin, out->end());
        out->erase(std::unique(out->begin() + run_begin, out->end()),
                   out->end());
      }
      ++stats->distinct_graphs;
      for (size_t k = run_begin; k < out->size(); ++k) {
        stats->hash ^= (*out)[k].bits();
        stats->hash *= kPostingHashPrime;
      }
    }
    *i = i_end;
    j = j_end;
  }
}

}  // namespace

ExtendStats InvertedIndex::ExtendInto(const PostingList& current,
                                      const PostingList& label_list,
                                      const std::vector<char>* alive,
                                      PostingList* out) {
  out->clear();
  ExtendStats stats;
  size_t i = 0;
  MergeSpan(current, &i, label_list.data(), label_list.size(), alive, out,
            &stats);
  return stats;
}

ExtendStats InvertedIndex::ExtendInto(const PostingList& current,
                                      const PostingsRef& label_list,
                                      const std::vector<char>* alive,
                                      PostingList* out,
                                      ExtendControl* control) {
  if (!label_list.blocked()) {
    // Raw span (raw-codec index or a block-mode small list): the exact
    // legacy merge. No skip opportunities at this granularity, so the
    // control carries nothing back.
    out->clear();
    ExtendStats stats;
    size_t i = 0;
    MergeSpan(current, &i, label_list.data, label_list.count, alive, out,
              &stats);
    return stats;
  }

  const BlockPostingStore& store = *label_list.store;
  const BlockPostingStore::LabelRef& ref = store.label(label_list.label);
  USTL_CHECK(control != nullptr && control->decode_scratch != nullptr);
  PostingList& scratch = *control->decode_scratch;
  out->clear();
  ExtendStats stats;
  size_t i = 0;
  const GraphId current_max =
      current.empty() ? 0 : current.back().graph();
  for (size_t b = 0; b < ref.num_blocks; ++b) {
    if (i >= current.size()) break;
    const BlockPostingStore::Block& block = store.block(ref, b);
    const GraphId block_min = Posting::FromBits(block.first_bits).graph();
    // Graph-bound skips: provably disjoint blocks never decode. These
    // skips cannot change output — the merge would have galloped past
    // the block's whole range anyway.
    if (store.BlockMaxGraph(ref, b) < current[i].graph()) {
      ++control->blocks_skipped;
      continue;
    }
    if (block_min > current_max) {
      control->blocks_skipped += ref.num_blocks - b;
      break;
    }
    // Threshold prune: the final distinct count can no longer reach what
    // the caller would accept, so the full join result would be
    // discarded — stop paying for it. Per-block distinct sums are exact
    // (graph alignment), and remaining postings of `current` bound what
    // the suffix can still contribute.
    if (control->min_distinct > 0) {
      const size_t remaining = std::min(
          std::min(store.SuffixDistinct(ref, b), control->current_distinct),
          current.size() - i);
      if (stats.distinct_graphs + remaining <
          static_cast<size_t>(control->min_distinct)) {
        control->pruned = true;
        break;
      }
    }
    scratch.resize(block.count);
    store.DecodeBlock(ref, b, scratch.data());
    ++control->blocks_decoded;
    MergeSpan(current, &i, scratch.data(), scratch.size(), alive, out,
              &stats);
  }
  return stats;
}

PostingList InvertedIndex::Extend(const PostingList& current,
                                  const PostingList& label_list,
                                  const std::vector<char>* alive) {
  PostingList out;
  ExtendInto(current, label_list, alive, &out);
  return out;
}

PostingList InvertedIndex::Extend(const PostingList& current,
                                  const PostingsRef& label_list,
                                  const std::vector<char>* alive) {
  PostingList out;
  if (label_list.blocked()) {
    PostingList scratch;
    ExtendControl control;
    control.decode_scratch = &scratch;
    ExtendInto(current, label_list, alive, &out, &control);
  } else {
    ExtendInto(current, label_list, alive, &out);
  }
  return out;
}

size_t InvertedIndex::DistinctGraphs(const PostingList& list) {
  size_t count = 0;
  GraphId prev = 0;
  bool first = true;
  for (const Posting& p : list) {
    if (first || p.graph() != prev) {
      ++count;
      prev = p.graph();
      first = false;
    }
  }
  return count;
}

}  // namespace ustl

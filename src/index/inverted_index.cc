#include "index/inverted_index.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/status.h"

namespace ustl {

const PostingList InvertedIndex::kEmpty;

InvertedIndex InvertedIndex::Build(
    const std::vector<TransformationGraph>& graphs, ThreadPool* pool,
    size_t num_shards, size_t num_labels_hint) {
  InvertedIndex index;
  // Field-width guards of the packed layout: graph ids fit 32 bits, node
  // ids 16. One cheap check per graph, kept in release builds because the
  // limits are input-dependent (a >64KiB target would silently corrupt
  // packed postings otherwise).
  USTL_CHECK(graphs.size() <= static_cast<size_t>(Posting::kMaxGraph) + 1);
  for (const TransformationGraph& graph : graphs) {
    USTL_CHECK(graph.num_nodes() <= Posting::kMaxNode);
  }

  // Single pre-sizing pass: lists_ is resized exactly once, so shard
  // construction never moves the vector-of-vectors. The bound comes from
  // the interner when the caller knows it, else from one scan over the
  // graphs (parallel over graphs; reduced in index order).
  size_t num_labels = num_labels_hint;
  if (num_labels == 0) {
    std::vector<size_t> bounds =
        ParallelMap<size_t>(pool, graphs.size(), [&](size_t g) {
          size_t bound = 0;
          const TransformationGraph& graph = graphs[g];
          for (int from = 1; from <= graph.num_nodes(); ++from) {
            for (const GraphEdge& edge : graph.edges_from(from)) {
              for (LabelId label : edge.labels) {
                bound = std::max(bound, static_cast<size_t>(label) + 1);
              }
            }
          }
          return bound;
        });
    for (size_t bound : bounds) num_labels = std::max(num_labels, bound);
  }
  if (num_labels == 0) return index;
  index.lists_.resize(num_labels);

  size_t shards = num_shards;
  if (shards == 0) {
    // One shard per pool thread; nested calls (already on a pool worker)
    // would run the shards serially and only pay the per-shard scan S
    // times over, so they stay single-shard.
    shards = pool != nullptr && !pool->InWorkerThread()
                 ? static_cast<size_t>(pool->num_threads())
                 : 1;
    // Every shard walks ALL graphs twice (count + fill) and only filters
    // by label range, so S shards cost ~S serial scans split over the
    // pool — a wash at best, and a regression once the task overhead
    // outweighs the posting writes (0.39x on a 4.8k-label input, see
    // BENCH_2026-07-31_posting_kernel.json). Small label ranges take the
    // serial path; explicit num_shards requests are honored as-is (the
    // bit-identity sweeps in tests rely on that).
    if (num_labels < kAutoShardMinLabels) shards = 1;
  }
  shards = std::max<size_t>(1, std::min(shards, num_labels));

  // Each shard owns the contiguous label range [lo, hi) and fills only
  // those lists, walking the graphs in the same (graph asc, from asc,
  // to asc, label asc) order as a serial build would. Shards touch
  // disjoint lists_ entries, so this is scheduling-only parallelism and
  // the result is bit-identical for any shard count. A count pass sizes
  // every list exactly before the fill pass, so lists never reallocate.
  ParallelFor(pool, shards, [&](size_t s) {
    const size_t lo = num_labels * s / shards;
    const size_t hi = num_labels * (s + 1) / shards;
    std::vector<size_t> counts(hi - lo, 0);
    for (const TransformationGraph& graph : graphs) {
      for (int from = 1; from <= graph.num_nodes(); ++from) {
        for (const GraphEdge& edge : graph.edges_from(from)) {
          for (LabelId label : edge.labels) {
            // A hint below the real maximum would silently drop every
            // posting of the labels past it; catch that contract break in
            // debug builds.
            USTL_DCHECK(static_cast<size_t>(label) < num_labels);
            if (label >= lo && label < hi) ++counts[label - lo];
          }
        }
      }
    }
    for (size_t label = lo; label < hi; ++label) {
      index.lists_[label].reserve(counts[label - lo]);
    }
    for (GraphId g = 0; g < graphs.size(); ++g) {
      const TransformationGraph& graph = graphs[g];
      for (int from = 1; from <= graph.num_nodes(); ++from) {
        for (const GraphEdge& edge : graph.edges_from(from)) {
          for (LabelId label : edge.labels) {
            if (label >= lo && label < hi) {
              index.lists_[label].push_back(Posting(g, from, edge.to));
            }
          }
        }
      }
    }
  });

  // Canonicalize the layout: trailing empty lists (possible when the hint
  // over-estimates the largest used label) are trimmed, so hint and scan
  // paths produce identical indexes.
  while (!index.lists_.empty() && index.lists_.back().empty()) {
    index.lists_.pop_back();
  }

  // Iteration order above is (graph asc, from asc, to asc), which is the
  // posting order; no per-list sort needed. Debug builds assert it — the
  // scan is O(total postings), so it stays out of release builds.
  for (const PostingList& list : index.lists_) {
    USTL_DCHECK(std::is_sorted(list.begin(), list.end()));
    (void)list;
  }
  return index;
}

const PostingList& InvertedIndex::Find(LabelId label) const {
  if (label >= lists_.size()) return kEmpty;
  return lists_[label];
}

size_t InvertedIndex::ListLength(LabelId label) const {
  return Find(label).size();
}

size_t InvertedIndex::NumLabels() const {
  size_t count = 0;
  for (const PostingList& list : lists_) {
    if (!list.empty()) ++count;
  }
  return count;
}

namespace {

// First index >= i whose posting's graph id is >= g (galloping: doubling
// probe then binary search). Keeps the merge join linear on balanced
// inputs and logarithmic when one list is much shorter than the other —
// the common shape once sampling or deep paths shrink the current list.
size_t GallopTo(const PostingList& list, size_t i, GraphId g) {
  if (i >= list.size() || list[i].graph() >= g) return i;
  size_t lo = i;  // invariant: list[lo].graph() < g
  size_t step = 1;
  size_t hi = i + step;
  while (hi < list.size() && list[hi].graph() < g) {
    lo = hi;
    step <<= 1;
    hi = lo + step;
  }
  if (hi > list.size()) hi = list.size();
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (list[mid].graph() < g) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

ExtendStats InvertedIndex::ExtendInto(const PostingList& current,
                                      const PostingList& label_list,
                                      const std::vector<char>* alive,
                                      PostingList* out) {
  out->clear();
  ExtendStats stats;
  // Merge join on graph id; within one graph, pair (a, b) x (b, c).
  size_t i = 0, j = 0;
  while (i < current.size() && j < label_list.size()) {
    const GraphId gi = current[i].graph();
    const GraphId gj = label_list[j].graph();
    if (gi < gj) {
      i = GallopTo(current, i, gj);
      continue;
    }
    if (gj < gi) {
      j = GallopTo(label_list, j, gi);
      continue;
    }
    if (alive != nullptr && !(*alive)[gi]) {
      while (i < current.size() && current[i].graph() == gi) ++i;
      while (j < label_list.size() && label_list[j].graph() == gi) ++j;
      continue;
    }
    size_t i_end = i;
    while (i_end < current.size() && current[i_end].graph() == gi) ++i_end;
    size_t j_end = j;
    while (j_end < label_list.size() && label_list[j_end].graph() == gi) {
      ++j_end;
    }
    // Both runs are small in practice; a nested loop keeps this simple and
    // cache-friendly.
    const size_t run_begin = out->size();
    for (size_t a = i; a < i_end; ++a) {
      for (size_t b = j; b < j_end; ++b) {
        if (current[a].end() == label_list[b].start()) {
          out->push_back(Posting::Join(current[a], label_list[b]));
        }
      }
    }
    if (out->size() > run_begin) {
      // Graph runs are emitted in ascending graph order, so sorting and
      // deduplicating each run locally (runs are tiny) leaves the whole
      // list sorted + unique — no full-list sort pass. Distinct count and
      // content hash fold in here, while the run is cache-hot.
      if (out->size() - run_begin > 1) {
        std::sort(out->begin() + run_begin, out->end());
        out->erase(std::unique(out->begin() + run_begin, out->end()),
                   out->end());
      }
      ++stats.distinct_graphs;
      for (size_t k = run_begin; k < out->size(); ++k) {
        stats.hash ^= (*out)[k].bits();
        stats.hash *= kPostingHashPrime;
      }
    }
    i = i_end;
    j = j_end;
  }
  return stats;
}

PostingList InvertedIndex::Extend(const PostingList& current,
                                  const PostingList& label_list,
                                  const std::vector<char>* alive) {
  PostingList out;
  ExtendInto(current, label_list, alive, &out);
  return out;
}

size_t InvertedIndex::DistinctGraphs(const PostingList& list) {
  size_t count = 0;
  GraphId prev = 0;
  bool first = true;
  for (const Posting& p : list) {
    if (first || p.graph() != prev) {
      ++count;
      prev = p.graph();
      first = false;
    }
  }
  return count;
}

}  // namespace ustl

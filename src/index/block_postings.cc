#include "index/block_postings.h"

#include <algorithm>

#include "common/status.h"

namespace ustl {

const BlockPostingStore::LabelRef BlockPostingStore::kEmptyRef;

namespace {

// Frame-of-reference byte cost of postings[begin .. end) as one block
// (header + three packed streams), the currency of the greedy partition
// decision. Mirrors ForPackedCodec's layout without running it.
size_t ForCostBytes(const PostingList& list, size_t begin, size_t end) {
  if (end - begin <= 1) return 0;
  uint32_t max_dg = 0, max_s = 0, max_e = 0;
  for (size_t i = begin + 1; i < end; ++i) {
    max_dg = std::max(max_dg, list[i].graph() - list[i - 1].graph());
    max_s = std::max(max_s, static_cast<uint32_t>(list[i].start()));
    max_e = std::max(max_e, static_cast<uint32_t>(list[i].end()));
  }
  auto width = [](uint32_t v) {
    size_t w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w;
  };
  const size_t n = end - begin - 1;
  auto packed = [n](size_t w) { return (n * w + 7) / 8; };
  return 3 + packed(width(max_dg)) + packed(width(max_s)) +
         packed(width(max_e));
}

}  // namespace

BlockPostingStore BlockPostingStore::Encode(
    std::vector<PostingList>&& lists, const BlockPostingsOptions& options) {
  BlockPostingStore store;
  store.labels_.resize(lists.size());

  // Per-block metadata (24 bytes) the greedy rule charges a split with.
  constexpr size_t kBlockMetaBytes = sizeof(Block);

  std::vector<size_t> run_starts;  // graph-run boundaries of one list
  for (size_t label = 0; label < lists.size(); ++label) {
    PostingList list = std::move(lists[label]);
    lists[label].shrink_to_fit();  // release the raw list as we go
    LabelRef& ref = store.labels_[label];
    ref.count = static_cast<uint32_t>(list.size());
    if (list.empty()) continue;
    ref.last_graph = list.back().graph();

    // Graph-run boundaries; the run count is the distinct-graph count.
    run_starts.clear();
    for (size_t i = 0; i < list.size(); ++i) {
      if (i == 0 || list[i].graph() != list[i - 1].graph()) {
        run_starts.push_back(i);
      }
    }
    ref.distinct = static_cast<uint32_t>(run_starts.size());

    if (list.size() <= options.small_list_cutoff) {
      ref.offset = static_cast<uint32_t>(store.words_.size());
      ref.num_blocks = 0;
      store.words_.insert(store.words_.end(), list.begin(), list.end());
      continue;
    }

    ref.offset = static_cast<uint32_t>(store.blocks_.size());
    run_starts.push_back(list.size());  // sentinel: end of the last run

    // Cut [begin, end) block spans on run boundaries.
    size_t begin = 0;
    uint32_t distinct_prefix = 0;
    size_t run = 0;
    while (begin < list.size()) {
      // The block always takes at least its first run, even when that
      // run alone exceeds every size cap — a graph must never straddle
      // blocks (the per-run join and the distinct bounds rely on it).
      size_t end = run_starts[run + 1];
      size_t runs_taken = 1;
      while (end < list.size()) {
        const size_t next_end = run_starts[run + runs_taken + 1];
        if (end - begin >= options.target_block_size) break;
        if (next_end - begin > options.max_block_size) break;
        if (options.greedy_partition) {
          // Close early when merging the next run costs more than the
          // split (fresh block metadata + two independent encodings).
          const size_t merged = ForCostBytes(list, begin, next_end);
          const size_t split = ForCostBytes(list, begin, end) +
                               kBlockMetaBytes +
                               ForCostBytes(list, end, next_end);
          if (merged > split) break;
        }
        end = next_end;
        ++runs_taken;
      }

      Block block;
      block.first_bits = list[begin].bits();
      block.payload_offset = static_cast<uint32_t>(store.payload_.size());
      block.count = static_cast<uint32_t>(end - begin);
      block.distinct_prefix = distinct_prefix;
      size_t encoded_bytes = 0;
      block.codec =
          ChoosePostingCodec(list.data() + begin, end - begin, &encoded_bytes);
      PostingCodec::Get(block.codec)
          .Encode(list.data() + begin, end - begin, &store.payload_);
      // Offsets are 32-bit by design (a 4 GiB compressed payload is far
      // past the in-RAM sizes this layer targets); fail loudly, not
      // silently, if an input ever crosses it.
      USTL_CHECK(store.payload_.size() <= 0xffffffffu);
      store.blocks_.push_back(block);
      distinct_prefix += static_cast<uint32_t>(runs_taken);
      begin = end;
      run += runs_taken;
    }
    ref.num_blocks =
        static_cast<uint32_t>(store.blocks_.size() - ref.offset);
    USTL_DCHECK(distinct_prefix == ref.distinct);
  }
  lists.clear();
  return store;
}

void BlockPostingStore::Materialize(LabelId id, PostingList* out) const {
  out->clear();
  const LabelRef& ref = label(id);
  out->resize(ref.count);
  if (ref.count == 0) return;
  if (ref.num_blocks == 0) {
    std::copy(SmallSpan(ref), SmallSpan(ref) + ref.count, out->begin());
    return;
  }
  size_t at = 0;
  for (size_t b = 0; b < ref.num_blocks; ++b) {
    DecodeBlock(ref, b, out->data() + at);
    at += blocks_[ref.offset + b].count;
  }
  USTL_DCHECK(at == ref.count);
}

BlockPostingStore::MemoryStats BlockPostingStore::memory() const {
  MemoryStats stats;
  stats.payload_bytes = payload_.size();
  stats.directory_bytes = labels_.size() * sizeof(LabelRef) +
                          blocks_.size() * sizeof(Block);
  stats.words_bytes = words_.size() * sizeof(Posting);
  stats.blocks = blocks_.size();
  for (const Block& block : blocks_) {
    if (block.codec == PostingCodecId::kVarint) {
      ++stats.varint_blocks;
    } else {
      ++stats.for_blocks;
    }
  }
  for (const LabelRef& ref : labels_) {
    stats.postings += ref.count;
    if (ref.num_blocks == 0 && ref.count > 0) ++stats.small_lists;
  }
  return stats;
}

}  // namespace ustl

// Block-compressed posting storage behind InvertedIndex's kBlock codec.
// Every label's list is cut into blocks whose boundaries ALWAYS fall on
// graph-run boundaries: a graph's postings never straddle two blocks.
// That single invariant carries the whole design — the per-block join
// (inverted_index.cc) can sort/dedup/hash each graph run locally exactly
// like the raw path, per-block distinct-graph counts are exact (a block's
// distinct count is its run count), and the inclusive max-graph bound of
// block b is just "the next block's first graph minus one".
//
// Memory layout is arena-shared across all labels, because the address-
// style corpora carry thousands of 1-3 posting lists where per-label
// vectors would cost more than the raw 8 bytes/posting they replace:
//   * labels_   — one 24-byte directory entry per label id;
//   * words_    — raw packed words of "small" lists (<= small_list_cutoff
//                 postings), stored uncompressed: at those sizes codec
//                 headers lose to the data;
//   * blocks_   — per-block metadata: first posting raw, payload offset,
//                 count, distinct-prefix (distinct graphs in the label's
//                 earlier blocks, making suffix upper bounds O(1)), codec;
//   * payload_  — the codec bytes of every block, concatenated.
//
// Partitioning is the fixed/greedy split the codecs want: fixed mode
// closes a block at the first run boundary past target_block_size; greedy
// mode additionally closes early when the frame-of-reference cost of
// merging the next run exceeds the cost of starting a fresh block (wide
// runs stop poisoning narrow neighbours). Both are pure functions of the
// list, so the store is bit-identical for any thread/shard count.
#ifndef USTL_INDEX_BLOCK_POSTINGS_H_
#define USTL_INDEX_BLOCK_POSTINGS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "index/posting_codec.h"

namespace ustl {

class BlockPostingStore {
 public:
  /// Directory entry of one label id. num_blocks == 0 means the list is
  /// a small raw span in the words arena (count may still be 0: a label
  /// that never occurs).
  struct LabelRef {
    uint32_t offset = 0;      // words_ index (small) / first block index
    uint32_t count = 0;       // total postings of the label
    uint32_t num_blocks = 0;  // 0 => small raw span
    uint32_t distinct = 0;    // distinct graphs in the whole list
    GraphId last_graph = 0;   // graph id of the last posting
  };

  /// Per-block metadata. `first` is stored raw — it is the decode seed
  /// and the block's inclusive lower graph bound.
  struct Block {
    uint64_t first_bits = 0;
    uint32_t payload_offset = 0;  // into payload_
    uint32_t count = 0;           // postings in the block (incl. first)
    uint32_t distinct_prefix = 0; // distinct graphs in earlier blocks
    PostingCodecId codec = PostingCodecId::kVarint;
  };

  struct MemoryStats {
    size_t postings = 0;
    size_t payload_bytes = 0;    // codec payloads
    size_t directory_bytes = 0;  // labels_ + blocks_
    size_t words_bytes = 0;      // small-list raw spans
    size_t blocks = 0;
    size_t varint_blocks = 0;
    size_t for_blocks = 0;
    size_t small_lists = 0;
    size_t total_bytes() const {
      return payload_bytes + directory_bytes + words_bytes;
    }
  };

  BlockPostingStore() = default;

  /// Consumes `lists` (each raw list is released right after encoding, so
  /// peak memory is one list above the compressed size) and builds the
  /// arenas. Deterministic: a pure function of (lists, options).
  static BlockPostingStore Encode(std::vector<PostingList>&& lists,
                                  const BlockPostingsOptions& options);

  size_t num_labels() const { return labels_.size(); }

  /// Directory lookup; labels past the directory resolve to an empty ref.
  const LabelRef& label(LabelId id) const {
    return id < labels_.size() ? labels_[id] : kEmptyRef;
  }

  /// The raw span of a small list (valid when ref.num_blocks == 0).
  const Posting* SmallSpan(const LabelRef& ref) const {
    return words_.data() + ref.offset;
  }

  /// Block `b` (0-based within the label) of a blocked list.
  const Block& block(const LabelRef& ref, size_t b) const {
    return blocks_[ref.offset + b];
  }

  /// Inclusive upper bound on the graph ids inside block `b` — exact up
  /// to gaps: blocks are graph-aligned, so the next block's first graph
  /// strictly exceeds every graph in this one.
  GraphId BlockMaxGraph(const LabelRef& ref, size_t b) const {
    if (b + 1 < ref.num_blocks) {
      return Posting::FromBits(blocks_[ref.offset + b + 1].first_bits)
                 .graph() -
             1;
    }
    return ref.last_graph;
  }

  /// Distinct graphs in blocks b, b+1, ... of the label — the skip
  /// threshold's upper bound on what the rest of the list can add.
  size_t SuffixDistinct(const LabelRef& ref, size_t b) const {
    return ref.distinct - blocks_[ref.offset + b].distinct_prefix;
  }

  /// Decodes block `b` into out[0 .. block.count). `out` must have room.
  void DecodeBlock(const LabelRef& ref, size_t b, Posting* out) const {
    const Block& blk = blocks_[ref.offset + b];
    PostingCodec::Get(blk.codec).Decode(payload_.data() + blk.payload_offset,
                                        Posting::FromBits(blk.first_bits),
                                        blk.count, out);
  }

  /// Whole-list decode for cold paths and tests (allocates).
  void Materialize(LabelId id, PostingList* out) const;

  MemoryStats memory() const;

 private:
  static const LabelRef kEmptyRef;

  std::vector<LabelRef> labels_;
  std::vector<Block> blocks_;
  PostingList words_;
  std::vector<uint8_t> payload_;
};

}  // namespace ustl

#endif  // USTL_INDEX_BLOCK_POSTINGS_H_

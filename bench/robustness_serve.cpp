// Robustness bench for the fault-tolerance layer (serve + pipeline). Five
// legs, one JSON line each, all gated on hardware-independent metrics by
// tools/check_bench.py:
//
//   * fault_sweep — the workload under an eventually-successful fault
//     plan (every faulty question recovers within the retry budget):
//     output must stay byte-identical to the serial clean baseline,
//     retries must actually fire, nothing may exhaust;
//   * breaker — a persistently failing backend opens the circuit
//     breaker; previously answered questions replay from the degradation
//     cache and the service keeps serving clean requests afterwards;
//   * cancel — a request cancelled mid-flight must return its typed
//     status within a bounded wall-clock latency (the one absolute-time
//     gate, with a deliberately generous ceiling: it detects hangs, not
//     slowness);
//   * zero_fault — the whole cancellation/retry plumbing armed but idle
//     (zero-fault plan, far-future deadline) vs. the plain service:
//     throughput overhead must stay within 2% (best-of-5 alternating
//     timing — the minimum filters scheduler noise);
//   * obs_overhead — prices the full diagnosis kit (per-span JSON
//     formatting, flight-recorder ring insertion, CPU-attributed
//     profile folding, plus an in-process metrics scrape) against the
//     production-default service; the ratio must stay within 2% and
//     output byte-identical. The marginal cost is measured directly
//     rather than as an end-to-end A/B difference: one single-worker
//     run (deterministic span volume) captures the exact span stream,
//     timed replay passes push that stream through the armed sinks
//     under a process-CPU clock, and the gate ratio is
//     (baseline_cpu + obs_cpu) / baseline_cpu. An A/B ratio of two
//     full runs puts host frequency noise (several percent on a
//     shared one-core CI box) on both large terms and cannot resolve
//     a 2% ceiling; replay noise only perturbs a term that is itself
//     well under 2%, so the gate is stable. A fully armed run still
//     executes end-to-end — byte-identity and the recorder_spans /
//     profile_folded sub-metrics come from it, proving ring insertion
//     and folding ran for real. The replay re-prices ring insertion
//     even though the always-on recorder already pays it in the
//     baseline — deliberate over-counting, so the ceiling covers the
//     always-on paths too;
//   * persist_overhead — the durability layer armed (persist_dir set,
//     fsync=batch, every verdict WAL-logged, final snapshot on drain)
//     vs. the plain service: overhead must stay within 10% and output
//     byte-identical; then a warm restart over the same directory must
//     recover a nonzero record count and serve the same workload with
//     strictly fewer backend calls (the ISSUE 9 crash-safety gate,
//     measured on its happy path).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "pipeline/fault_oracle.h"
#include "pipeline/pipeline.h"
#include "serve/service.h"

namespace {

using namespace ustl;
using namespace ustl::bench;

constexpr size_t kBudget = 60;

Table MakeTable(const GeneratedDataset& data, size_t columns) {
  std::vector<std::string> names;
  for (size_t i = 1; i <= columns; ++i) {
    names.push_back("value" + std::to_string(i));
  }
  Table table(names);
  for (size_t c = 0; c < data.column.size(); ++c) {
    const size_t cluster = table.AddCluster();
    for (const std::string& value : data.column[c]) {
      table.AddRecord(cluster, std::vector<std::string>(columns, value));
    }
  }
  return table;
}

FrameworkOptions BenchFramework() {
  FrameworkOptions framework;
  framework.budget_per_column = kBudget;
  return framework;
}

std::string SerialFingerprint(Table table) {
  ApproveAllOracle oracle;
  PipelineOptions options;
  options.framework = BenchFramework();
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  return FingerprintConsolidation(table, run.golden_records);
}

struct Workload {
  std::vector<Table> tables;
  std::vector<std::string> baselines;
};

Workload MakeWorkload(double scale) {
  AddressGenOptions address_gen;
  address_gen.scale = scale;
  address_gen.seed = BenchSeed() + 3;
  JournalTitleGenOptions journal_gen;
  journal_gen.scale = scale;
  journal_gen.seed = BenchSeed() + 4;
  Workload workload;
  workload.tables.push_back(
      MakeTable(GenerateAddressDataset(address_gen), 1));
  workload.tables.push_back(
      MakeTable(GenerateJournalTitleDataset(journal_gen), 1));
  workload.tables.push_back(
      MakeTable(GenerateAddressDataset(address_gen), 2));
  for (const Table& table : workload.tables) {
    workload.baselines.push_back(SerialFingerprint(table));
  }
  return workload;
}

// Runs the workload once through a fresh service; returns seconds, and
// whether every table matched its serial baseline.
double RunWorkload(const Workload& workload, VerificationOracle* oracle,
                   ServiceOptions options, int64_t deadline_ms,
                   bool* byte_identical, ServiceStats* stats,
                   TraceSink* trace_sink = nullptr,
                   size_t* scraped_bytes = nullptr) {
  options.framework = BenchFramework();
  options.num_threads = 4;
  ConsolidationService service(oracle, options);
  std::vector<Table> tables = workload.tables;
  std::vector<uint64_t> handles;
  Timer timer;
  for (Table& table : tables) {
    RequestOptions request;
    request.deadline_ms = deadline_ms;
    request.trace_sink = trace_sink;
    handles.push_back(service.Submit(&table, std::move(request)));
  }
  bool identical = true;
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestResult result = service.Wait(handles[t]);
    identical = identical && result.status == RequestStatus::kOk &&
                FingerprintConsolidation(tables[t], result.golden_records) ==
                    workload.baselines[t];
  }
  if (scraped_bytes != nullptr) {
    // Timed on purpose: the obs_overhead leg prices a live registry
    // scrape alongside tracing, not just the per-span cost.
    *scraped_bytes = service.metrics().WriteText().size();
  }
  const double seconds = timer.ElapsedSeconds();
  if (byte_identical != nullptr) *byte_identical = identical;
  if (stats != nullptr) *stats = service.stats();
  return seconds;
}

double ProcessCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec + ts.tv_nsec * 1e-9;
}

// Collects the raw span stream of a run so the obs_overhead leg can
// replay the exact production-shaped spans through the armed sinks.
class CaptureTraceSink : public TraceSink {
 public:
  void Emit(const TraceSpan& span) override {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(span);
  }
  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

struct ObsRun {
  double cpu = 0.0;         // process-CPU seconds for the workload
  double scrape_cpu = 0.0;  // process-CPU seconds for the registry scrape
  bool byte_identical = false;
  uint64_t recorder_spans = 0;
  uint64_t profile_folded = 0;
};

// One obs_overhead workload pass through a single-worker service (the
// span volume is then deterministic run to run). The flight recorder
// rides along in every configuration — it is the production default;
// `armed` additionally enables the profile accumulator and prices a
// registry scrape. Counters are read after the clock stops.
ObsRun RunObsWorkload(const Workload& workload, bool armed,
                      TraceSink* request_sink) {
  ApproveAllOracle oracle;
  ServiceOptions options;
  options.framework = BenchFramework();
  options.num_threads = 1;
  options.enable_profiler = armed;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables = workload.tables;
  std::vector<uint64_t> handles;
  ObsRun run;
  const double cpu_start = ProcessCpuSeconds();
  for (Table& table : tables) {
    RequestOptions request;
    request.trace_sink = request_sink;
    handles.push_back(service.Submit(&table, std::move(request)));
  }
  bool identical = true;
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestResult result = service.Wait(handles[t]);
    identical = identical && result.status == RequestStatus::kOk &&
                FingerprintConsolidation(tables[t], result.golden_records) ==
                    workload.baselines[t];
  }
  run.cpu = ProcessCpuSeconds() - cpu_start;
  if (armed) {
    const double scrape_start = ProcessCpuSeconds();
    const size_t scraped = service.metrics().WriteText().size();
    run.scrape_cpu = ProcessCpuSeconds() - scrape_start;
    identical = identical && scraped > 0;
  }
  run.byte_identical = identical;
  if (service.flight_recorder() != nullptr) {
    run.recorder_spans = service.flight_recorder()->recorded();
  }
  if (service.profiler() != nullptr) {
    run.profile_folded = service.profiler()->folded_spans();
  }
  return run;
}

}  // namespace

int main() {
  PrintEnvironmentJson("robustness_serve");
  const double scale = BenchScale(0.06);
  printf("=== Robustness: retries, breaker, cancellation, zero-fault "
         "overhead (scale=%.2f) ===\n\n",
         scale);
  const Workload workload = MakeWorkload(scale);

  // --- fault_sweep: eventually-successful plan, byte-identical output.
  {
    FaultPlan plan;
    plan.fault_rate = 0.6;
    plan.failures_per_question = 2;
    plan.seed = BenchSeed();
    ApproveAllOracle backend;
    FaultInjectingOracle faulty(&backend, plan);
    ServiceOptions options;
    options.enable_retry = true;
    options.retry.max_attempts = 4;
    bool byte_identical = false;
    ServiceStats stats;
    const double seconds =
        RunWorkload(workload, &faulty, options, 0, &byte_identical, &stats);
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"fault_sweep\", "
           "\"seconds\": %.4f, \"faults_injected\": %zu, \"retries\": %zu, "
           "\"recovered\": %zu, \"exhausted\": %zu, "
           "\"byte_identical\": %s}\n",
           seconds, faulty.faults_injected(), stats.retry.retries,
           stats.retry.recovered, stats.retry.exhausted,
           byte_identical ? "true" : "false");
  }

  // --- breaker: persistent faults trip it; degraded service replays.
  {
    FaultPlan plan;
    plan.fault_rate = 1.0;
    plan.persistent = true;
    plan.seed = BenchSeed();
    ApproveAllOracle backend;
    FaultInjectingOracle faulty(&backend, plan);
    RetryingOracle::Options retry_options;
    retry_options.max_attempts = 2;
    retry_options.breaker_failure_threshold = 3;
    retry_options.breaker_cooldown_calls = 1000;
    RetryingOracle retrying(&faulty, retry_options);
    size_t failed = 0;
    for (int i = 0; i < 8; ++i) {
      try {
        retrying.Verify({{"q" + std::to_string(i) + " Street",
                          "q" + std::to_string(i) + " St"}});
      } catch (...) {
        ++failed;
      }
    }
    const RetryingOracleStats stats = retrying.stats();
    // The service itself (plain oracle) still serves after the storm —
    // byte-identity on a clean run is the "never the service" check.
    ApproveAllOracle clean;
    ServiceOptions options;
    bool alive = false;
    RunWorkload(workload, &clean, options, 0, &alive, nullptr);
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"breaker\", "
           "\"failed_questions\": %zu, \"breaker_opens\": %zu, "
           "\"short_circuits\": %zu, \"service_alive\": %s}\n",
           failed, stats.breaker_opens, stats.short_circuits,
           alive ? "true" : "false");
  }

  // --- cancel: mid-flight cancellation latency (hang detector).
  {
    FaultPlan plan;  // a slow oracle keeps the request mid-flight
    plan.slow_rate = 1.0;
    plan.slow_ms = 10;
    plan.seed = BenchSeed();
    ApproveAllOracle backend;
    FaultInjectingOracle slow(&backend, plan);
    ServiceOptions options;
    options.framework = BenchFramework();
    options.num_threads = 4;
    ConsolidationService service(&slow, options);
    std::vector<Table> tables = workload.tables;
    std::vector<uint64_t> handles;
    for (Table& table : tables) handles.push_back(service.Submit(&table));
    const uint64_t victim = handles[0];
    const auto cancel_started = std::chrono::steady_clock::now();
    service.Cancel(victim);
    RequestResult result = service.Wait(victim);
    const double cancel_latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - cancel_started)
            .count();
    for (size_t t = 1; t < handles.size(); ++t) service.Wait(handles[t]);
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"cancel\", "
           "\"cancelled\": %d, \"cancel_latency_ms\": %.2f}\n",
           result.status == RequestStatus::kCancelled ? 1 : 0,
           cancel_latency_ms);
  }

  // --- zero_fault: armed-but-idle plumbing vs. the plain service.
  {
    double plain_best = 0.0;
    double armed_best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      ApproveAllOracle plain_backend;
      ServiceOptions plain_options;
      const double plain = RunWorkload(workload, &plain_backend,
                                       plain_options, 0, nullptr, nullptr);
      if (plain_best == 0.0 || plain < plain_best) plain_best = plain;

      ApproveAllOracle armed_backend;
      FaultPlan zero;  // inactive plan: injector forwards every call
      FaultInjectingOracle injector(&armed_backend, zero);
      ServiceOptions armed_options;
      armed_options.enable_retry = true;
      bool byte_identical = false;
      const double armed =
          RunWorkload(workload, &injector, armed_options,
                      /*deadline_ms=*/3600 * 1000, &byte_identical, nullptr);
      if (armed_best == 0.0 || armed < armed_best) armed_best = armed;
      if (!byte_identical) {
        printf("{\"bench\": \"robustness_serve\", \"variant\": "
               "\"zero_fault\", \"error\": \"not byte-identical\"}\n");
        return 1;
      }
    }
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"zero_fault\", "
           "\"plain_seconds\": %.4f, \"armed_seconds\": %.4f, "
           "\"overhead_ratio\": %.4f}\n",
           plain_best, armed_best, armed_best / plain_best);
  }

  // --- obs_overhead: price the armed diagnosis paths against the
  // production default (flight recorder on in both — always-on by
  // design). See the header comment for why the marginal cost is
  // measured by replaying the captured span stream instead of by an
  // end-to-end A/B ratio.
  {
    const auto fail = [] {
      printf("{\"bench\": \"robustness_serve\", \"variant\": "
             "\"obs_overhead\", \"error\": \"not byte-identical\"}\n");
    };
    // Production-default CPU: best of 7 single-worker reps.
    double baseline_cpu = 0.0;
    for (int rep = 0; rep < 7; ++rep) {
      const ObsRun run = RunObsWorkload(workload, false, nullptr);
      if (!run.byte_identical) {
        fail();
        return 1;
      }
      if (baseline_cpu == 0.0 || run.cpu < baseline_cpu) {
        baseline_cpu = run.cpu;
      }
    }
    // Capture the span stream once (single worker, so the stream is the
    // one every rep above generated for the recorder).
    CaptureTraceSink capture;
    if (!RunObsWorkload(workload, false, &capture).byte_identical) {
      fail();
      return 1;
    }
    // Fully armed run, end-to-end: byte-identity under the whole kit,
    // plus proof that ring insertion and profile folding really ran.
    CountingTraceSink counting;
    const ObsRun armed = RunObsWorkload(workload, true, &counting);
    if (!armed.byte_identical) {
      fail();
      return 1;
    }
    // Price formatting + ring insertion + folding by replaying the
    // captured stream through fresh sinks; best of 5 passes.
    double replay_cpu = 0.0;
    for (int pass = 0; pass < 5; ++pass) {
      CountingTraceSink sink;
      FlightRecorder recorder;
      ProfileAccumulator profiler;
      const double cpu_start = ProcessCpuSeconds();
      for (const TraceSpan& span : capture.spans()) {
        sink.Emit(span);
        recorder.Emit(span);
        profiler.Emit(span);
      }
      const double cpu = ProcessCpuSeconds() - cpu_start;
      if (replay_cpu == 0.0 || cpu < replay_cpu) replay_cpu = cpu;
    }
    const double obs_cpu = replay_cpu + armed.scrape_cpu;
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"obs_overhead\", "
           "\"baseline_cpu_seconds\": %.4f, \"obs_cpu_seconds\": %.6f, "
           "\"overhead_ratio\": %.4f, \"spans\": %llu, "
           "\"recorder_spans\": %llu, \"profile_folded\": %llu, "
           "\"byte_identical\": true}\n",
           baseline_cpu, obs_cpu, (baseline_cpu + obs_cpu) / baseline_cpu,
           static_cast<unsigned long long>(counting.count()),
           static_cast<unsigned long long>(armed.recorder_spans),
           static_cast<unsigned long long>(armed.profile_folded));
  }

  // --- persist_overhead: WAL + snapshot armed vs. the plain service,
  // then a warm restart over the persisted directory.
  {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() /
         ("ustl_bench_persist_" + std::to_string(::getpid())))
            .string();
    double plain_best = 0.0;
    double persisted_best = 0.0;
    size_t cold_calls = 0;
    for (int rep = 0; rep < 5; ++rep) {
      ApproveAllOracle plain_backend;
      ServiceOptions plain_options;
      const double plain = RunWorkload(workload, &plain_backend,
                                       plain_options, 0, nullptr, nullptr);
      if (plain_best == 0.0 || plain < plain_best) plain_best = plain;

      fs::remove_all(dir);  // every persisted rep starts cold
      ApproveAllOracle persisted_backend;
      ServiceOptions persisted_options;
      persisted_options.persist_dir = dir;
      persisted_options.persist.fsync = FsyncPolicy::kBatch;
      bool byte_identical = false;
      ServiceStats stats;
      const double persisted =
          RunWorkload(workload, &persisted_backend, persisted_options, 0,
                      &byte_identical, &stats);
      if (persisted_best == 0.0 || persisted < persisted_best) {
        persisted_best = persisted;
      }
      cold_calls = stats.oracle.backend_calls;
      if (!byte_identical) {
        printf("{\"bench\": \"robustness_serve\", \"variant\": "
               "\"persist_overhead\", \"error\": \"not byte-identical\"}\n");
        return 1;
      }
    }

    // Warm restart over the last rep's directory: recovery must report
    // records and strictly cut backend traffic, with identical bytes.
    ApproveAllOracle warm_backend;
    ServiceOptions warm_options;
    warm_options.persist_dir = dir;
    bool warm_identical = false;
    ServiceStats warm_stats;
    RunWorkload(workload, &warm_backend, warm_options, 0, &warm_identical,
                &warm_stats);
    fs::remove_all(dir);
    const unsigned long long recovered =
        static_cast<unsigned long long>(warm_stats.persist.recovered_records);
    const bool warm_saves = warm_stats.oracle.backend_calls < cold_calls;
    printf("{\"bench\": \"robustness_serve\", "
           "\"variant\": \"persist_overhead\", "
           "\"plain_seconds\": %.4f, \"persisted_seconds\": %.4f, "
           "\"overhead_ratio\": %.4f, \"recovered_records\": %llu, "
           "\"cold_backend_calls\": %zu, \"warm_backend_calls\": %zu, "
           "\"warm_call_savings\": %d, \"byte_identical\": %s}\n",
           plain_best, persisted_best, persisted_best / plain_best, recovered,
           cold_calls, warm_stats.oracle.backend_calls, warm_saves ? 1 : 0,
           (warm_identical && recovered > 0) ? "true" : "false");
  }
  return 0;
}

// Robustness bench for the fault-tolerance layer (serve + pipeline). Five
// legs, one JSON line each, all gated on hardware-independent metrics by
// tools/check_bench.py:
//
//   * fault_sweep — the workload under an eventually-successful fault
//     plan (every faulty question recovers within the retry budget):
//     output must stay byte-identical to the serial clean baseline,
//     retries must actually fire, nothing may exhaust;
//   * breaker — a persistently failing backend opens the circuit
//     breaker; previously answered questions replay from the degradation
//     cache and the service keeps serving clean requests afterwards;
//   * cancel — a request cancelled mid-flight must return its typed
//     status within a bounded wall-clock latency (the one absolute-time
//     gate, with a deliberately generous ceiling: it detects hangs, not
//     slowness);
//   * zero_fault — the whole cancellation/retry plumbing armed but idle
//     (zero-fault plan, far-future deadline) vs. the plain service:
//     throughput overhead must stay within 2% (best-of-5 alternating
//     timing — the minimum filters scheduler noise);
//   * obs_overhead — full observability armed (a per-request trace sink
//     that formats every span, plus an in-process metrics scrape) vs.
//     the untraced service: overhead must stay within 2% and output
//     byte-identical (the ISSUE 8 zero-perturbation gate). The sink is
//     CountingTraceSink — it pays the full JSON formatting cost and
//     discards the bytes, so the measurement prices emission honestly
//     without timing the filesystem;
//   * persist_overhead — the durability layer armed (persist_dir set,
//     fsync=batch, every verdict WAL-logged, final snapshot on drain)
//     vs. the plain service: overhead must stay within 10% and output
//     byte-identical; then a warm restart over the same directory must
//     recover a nonzero record count and serve the same workload with
//     strictly fewer backend calls (the ISSUE 9 crash-safety gate,
//     measured on its happy path).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "pipeline/fault_oracle.h"
#include "pipeline/pipeline.h"
#include "serve/service.h"

namespace {

using namespace ustl;
using namespace ustl::bench;

constexpr size_t kBudget = 60;

Table MakeTable(const GeneratedDataset& data, size_t columns) {
  std::vector<std::string> names;
  for (size_t i = 1; i <= columns; ++i) {
    names.push_back("value" + std::to_string(i));
  }
  Table table(names);
  for (size_t c = 0; c < data.column.size(); ++c) {
    const size_t cluster = table.AddCluster();
    for (const std::string& value : data.column[c]) {
      table.AddRecord(cluster, std::vector<std::string>(columns, value));
    }
  }
  return table;
}

FrameworkOptions BenchFramework() {
  FrameworkOptions framework;
  framework.budget_per_column = kBudget;
  return framework;
}

std::string SerialFingerprint(Table table) {
  ApproveAllOracle oracle;
  PipelineOptions options;
  options.framework = BenchFramework();
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  return FingerprintConsolidation(table, run.golden_records);
}

struct Workload {
  std::vector<Table> tables;
  std::vector<std::string> baselines;
};

Workload MakeWorkload(double scale) {
  AddressGenOptions address_gen;
  address_gen.scale = scale;
  address_gen.seed = BenchSeed() + 3;
  JournalTitleGenOptions journal_gen;
  journal_gen.scale = scale;
  journal_gen.seed = BenchSeed() + 4;
  Workload workload;
  workload.tables.push_back(
      MakeTable(GenerateAddressDataset(address_gen), 1));
  workload.tables.push_back(
      MakeTable(GenerateJournalTitleDataset(journal_gen), 1));
  workload.tables.push_back(
      MakeTable(GenerateAddressDataset(address_gen), 2));
  for (const Table& table : workload.tables) {
    workload.baselines.push_back(SerialFingerprint(table));
  }
  return workload;
}

// Runs the workload once through a fresh service; returns seconds, and
// whether every table matched its serial baseline.
double RunWorkload(const Workload& workload, VerificationOracle* oracle,
                   ServiceOptions options, int64_t deadline_ms,
                   bool* byte_identical, ServiceStats* stats,
                   TraceSink* trace_sink = nullptr,
                   size_t* scraped_bytes = nullptr) {
  options.framework = BenchFramework();
  options.num_threads = 4;
  ConsolidationService service(oracle, options);
  std::vector<Table> tables = workload.tables;
  std::vector<uint64_t> handles;
  Timer timer;
  for (Table& table : tables) {
    RequestOptions request;
    request.deadline_ms = deadline_ms;
    request.trace_sink = trace_sink;
    handles.push_back(service.Submit(&table, std::move(request)));
  }
  bool identical = true;
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestResult result = service.Wait(handles[t]);
    identical = identical && result.status == RequestStatus::kOk &&
                FingerprintConsolidation(tables[t], result.golden_records) ==
                    workload.baselines[t];
  }
  if (scraped_bytes != nullptr) {
    // Timed on purpose: the obs_overhead leg prices a live registry
    // scrape alongside tracing, not just the per-span cost.
    *scraped_bytes = service.metrics().WriteText().size();
  }
  const double seconds = timer.ElapsedSeconds();
  if (byte_identical != nullptr) *byte_identical = identical;
  if (stats != nullptr) *stats = service.stats();
  return seconds;
}

}  // namespace

int main() {
  PrintEnvironmentJson("robustness_serve");
  const double scale = BenchScale(0.06);
  printf("=== Robustness: retries, breaker, cancellation, zero-fault "
         "overhead (scale=%.2f) ===\n\n",
         scale);
  const Workload workload = MakeWorkload(scale);

  // --- fault_sweep: eventually-successful plan, byte-identical output.
  {
    FaultPlan plan;
    plan.fault_rate = 0.6;
    plan.failures_per_question = 2;
    plan.seed = BenchSeed();
    ApproveAllOracle backend;
    FaultInjectingOracle faulty(&backend, plan);
    ServiceOptions options;
    options.enable_retry = true;
    options.retry.max_attempts = 4;
    bool byte_identical = false;
    ServiceStats stats;
    const double seconds =
        RunWorkload(workload, &faulty, options, 0, &byte_identical, &stats);
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"fault_sweep\", "
           "\"seconds\": %.4f, \"faults_injected\": %zu, \"retries\": %zu, "
           "\"recovered\": %zu, \"exhausted\": %zu, "
           "\"byte_identical\": %s}\n",
           seconds, faulty.faults_injected(), stats.retry.retries,
           stats.retry.recovered, stats.retry.exhausted,
           byte_identical ? "true" : "false");
  }

  // --- breaker: persistent faults trip it; degraded service replays.
  {
    FaultPlan plan;
    plan.fault_rate = 1.0;
    plan.persistent = true;
    plan.seed = BenchSeed();
    ApproveAllOracle backend;
    FaultInjectingOracle faulty(&backend, plan);
    RetryingOracle::Options retry_options;
    retry_options.max_attempts = 2;
    retry_options.breaker_failure_threshold = 3;
    retry_options.breaker_cooldown_calls = 1000;
    RetryingOracle retrying(&faulty, retry_options);
    size_t failed = 0;
    for (int i = 0; i < 8; ++i) {
      try {
        retrying.Verify({{"q" + std::to_string(i) + " Street",
                          "q" + std::to_string(i) + " St"}});
      } catch (...) {
        ++failed;
      }
    }
    const RetryingOracleStats stats = retrying.stats();
    // The service itself (plain oracle) still serves after the storm —
    // byte-identity on a clean run is the "never the service" check.
    ApproveAllOracle clean;
    ServiceOptions options;
    bool alive = false;
    RunWorkload(workload, &clean, options, 0, &alive, nullptr);
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"breaker\", "
           "\"failed_questions\": %zu, \"breaker_opens\": %zu, "
           "\"short_circuits\": %zu, \"service_alive\": %s}\n",
           failed, stats.breaker_opens, stats.short_circuits,
           alive ? "true" : "false");
  }

  // --- cancel: mid-flight cancellation latency (hang detector).
  {
    FaultPlan plan;  // a slow oracle keeps the request mid-flight
    plan.slow_rate = 1.0;
    plan.slow_ms = 10;
    plan.seed = BenchSeed();
    ApproveAllOracle backend;
    FaultInjectingOracle slow(&backend, plan);
    ServiceOptions options;
    options.framework = BenchFramework();
    options.num_threads = 4;
    ConsolidationService service(&slow, options);
    std::vector<Table> tables = workload.tables;
    std::vector<uint64_t> handles;
    for (Table& table : tables) handles.push_back(service.Submit(&table));
    const uint64_t victim = handles[0];
    const auto cancel_started = std::chrono::steady_clock::now();
    service.Cancel(victim);
    RequestResult result = service.Wait(victim);
    const double cancel_latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - cancel_started)
            .count();
    for (size_t t = 1; t < handles.size(); ++t) service.Wait(handles[t]);
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"cancel\", "
           "\"cancelled\": %d, \"cancel_latency_ms\": %.2f}\n",
           result.status == RequestStatus::kCancelled ? 1 : 0,
           cancel_latency_ms);
  }

  // --- zero_fault: armed-but-idle plumbing vs. the plain service.
  {
    double plain_best = 0.0;
    double armed_best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      ApproveAllOracle plain_backend;
      ServiceOptions plain_options;
      const double plain = RunWorkload(workload, &plain_backend,
                                       plain_options, 0, nullptr, nullptr);
      if (plain_best == 0.0 || plain < plain_best) plain_best = plain;

      ApproveAllOracle armed_backend;
      FaultPlan zero;  // inactive plan: injector forwards every call
      FaultInjectingOracle injector(&armed_backend, zero);
      ServiceOptions armed_options;
      armed_options.enable_retry = true;
      bool byte_identical = false;
      const double armed =
          RunWorkload(workload, &injector, armed_options,
                      /*deadline_ms=*/3600 * 1000, &byte_identical, nullptr);
      if (armed_best == 0.0 || armed < armed_best) armed_best = armed;
      if (!byte_identical) {
        printf("{\"bench\": \"robustness_serve\", \"variant\": "
               "\"zero_fault\", \"error\": \"not byte-identical\"}\n");
        return 1;
      }
    }
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"zero_fault\", "
           "\"plain_seconds\": %.4f, \"armed_seconds\": %.4f, "
           "\"overhead_ratio\": %.4f}\n",
           plain_best, armed_best, armed_best / plain_best);
  }

  // --- obs_overhead: tracing + metrics scrape armed vs. untraced.
  {
    double untraced_best = 0.0;
    double traced_best = 0.0;
    unsigned long long spans = 0;
    for (int rep = 0; rep < 5; ++rep) {
      ApproveAllOracle untraced_backend;
      ServiceOptions untraced_options;
      const double untraced = RunWorkload(workload, &untraced_backend,
                                          untraced_options, 0, nullptr,
                                          nullptr);
      if (untraced_best == 0.0 || untraced < untraced_best) {
        untraced_best = untraced;
      }

      ApproveAllOracle traced_backend;
      ServiceOptions traced_options;
      CountingTraceSink sink;
      bool byte_identical = false;
      size_t scraped = 0;
      const double traced =
          RunWorkload(workload, &traced_backend, traced_options, 0,
                      &byte_identical, nullptr, &sink, &scraped);
      if (traced_best == 0.0 || traced < traced_best) traced_best = traced;
      spans = static_cast<unsigned long long>(sink.count());
      if (!byte_identical || scraped == 0) {
        printf("{\"bench\": \"robustness_serve\", \"variant\": "
               "\"obs_overhead\", \"error\": \"not byte-identical\"}\n");
        return 1;
      }
    }
    printf("{\"bench\": \"robustness_serve\", \"variant\": \"obs_overhead\", "
           "\"untraced_seconds\": %.4f, \"traced_seconds\": %.4f, "
           "\"overhead_ratio\": %.4f, \"spans\": %llu, "
           "\"byte_identical\": true}\n",
           untraced_best, traced_best, traced_best / untraced_best, spans);
  }

  // --- persist_overhead: WAL + snapshot armed vs. the plain service,
  // then a warm restart over the persisted directory.
  {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() /
         ("ustl_bench_persist_" + std::to_string(::getpid())))
            .string();
    double plain_best = 0.0;
    double persisted_best = 0.0;
    size_t cold_calls = 0;
    for (int rep = 0; rep < 5; ++rep) {
      ApproveAllOracle plain_backend;
      ServiceOptions plain_options;
      const double plain = RunWorkload(workload, &plain_backend,
                                       plain_options, 0, nullptr, nullptr);
      if (plain_best == 0.0 || plain < plain_best) plain_best = plain;

      fs::remove_all(dir);  // every persisted rep starts cold
      ApproveAllOracle persisted_backend;
      ServiceOptions persisted_options;
      persisted_options.persist_dir = dir;
      persisted_options.persist.fsync = FsyncPolicy::kBatch;
      bool byte_identical = false;
      ServiceStats stats;
      const double persisted =
          RunWorkload(workload, &persisted_backend, persisted_options, 0,
                      &byte_identical, &stats);
      if (persisted_best == 0.0 || persisted < persisted_best) {
        persisted_best = persisted;
      }
      cold_calls = stats.oracle.backend_calls;
      if (!byte_identical) {
        printf("{\"bench\": \"robustness_serve\", \"variant\": "
               "\"persist_overhead\", \"error\": \"not byte-identical\"}\n");
        return 1;
      }
    }

    // Warm restart over the last rep's directory: recovery must report
    // records and strictly cut backend traffic, with identical bytes.
    ApproveAllOracle warm_backend;
    ServiceOptions warm_options;
    warm_options.persist_dir = dir;
    bool warm_identical = false;
    ServiceStats warm_stats;
    RunWorkload(workload, &warm_backend, warm_options, 0, &warm_identical,
                &warm_stats);
    fs::remove_all(dir);
    const unsigned long long recovered =
        static_cast<unsigned long long>(warm_stats.persist.recovered_records);
    const bool warm_saves = warm_stats.oracle.backend_calls < cold_calls;
    printf("{\"bench\": \"robustness_serve\", "
           "\"variant\": \"persist_overhead\", "
           "\"plain_seconds\": %.4f, \"persisted_seconds\": %.4f, "
           "\"overhead_ratio\": %.4f, \"recovered_records\": %llu, "
           "\"cold_backend_calls\": %zu, \"warm_backend_calls\": %zu, "
           "\"warm_call_savings\": %d, \"byte_identical\": %s}\n",
           plain_best, persisted_best, persisted_best / plain_best, recovered,
           cold_calls, warm_stats.oracle.backend_calls, warm_saves ? 1 : 0,
           (warm_identical && recovered > 0) ? "true" : "false");
  }
  return 0;
}

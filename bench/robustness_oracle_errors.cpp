// Robustness to human mistakes (Section 3: the expert "is not required to
// exhaustively check all pairs; our method is robust to small numbers of
// errors as verified in our experiment"). The paper claims but does not
// plot this; here we sweep the simulated oracle's verdict-flip rate and
// report precision / recall / MCC of standardization on the Address
// analog. Expected shape: metrics degrade gracefully — small error rates
// (<= 5-10%) cost little precision, because wrongly approved groups are
// mostly small and wrongly rejected large groups reappear as later
// mirror-direction groups.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  const double scale = BenchScale(0.15);
  printf("=== Robustness: oracle error injection on Address "
         "(scale=%.2f, budget=100) ===\n\n",
         scale);

  AddressGenOptions gen;
  gen.scale = scale;
  gen.seed = BenchSeed() + 5;
  GeneratedDataset data = GenerateAddressDataset(gen);
  std::vector<SampledPair> samples = SampleFor(data);

  TextTable table({"error rate", "precision", "recall", "MCC",
                   "groups approved", "edits"});
  for (double error_rate : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    // Average over two oracle seeds: a single flip sequence is noisy.
    double precision = 0, recall = 0, mcc = 0;
    double approved = 0, edits = 0;
    const int kRuns = 2;
    for (int run = 0; run < kRuns; ++run) {
      SimulatedOracle::Options oracle_options;
      oracle_options.error_rate = error_rate;
      oracle_options.seed = 42 + run;
      SimulatedOracle oracle(
          [&](const StringPair& pair) {
            return data.IsTrueVariantPair(pair);
          },
          data.direction_judge, oracle_options);
      FrameworkOptions options;
      options.budget_per_column = 100;
      Column column = data.column;
      ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
      Confusion confusion = EvaluateIdentity(column, samples);
      precision += Precision(confusion);
      recall += Recall(confusion);
      mcc += Mcc(confusion);
      approved += static_cast<double>(result.groups_approved);
      edits += static_cast<double>(result.edits);
    }
    table.AddRow({Fmt(error_rate, 2), Fmt(precision / kRuns, 3),
                  Fmt(recall / kRuns, 3), Fmt(mcc / kRuns, 3),
                  Fmt(approved / kRuns, 1), Fmt(edits / kRuns, 1)});
  }
  printf("%s\n", table.Render().c_str());
  printf("Reading: precision and MCC degrade gracefully; the paper's "
         "robustness claim\nholds for error rates up to ~10%%.\n");
  return 0;
}

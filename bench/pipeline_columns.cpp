// Column-parallel consolidation pipeline bench. A multi-column table
// (the Address analog replicated into several attribute columns — the
// workload a multi-source feed produces, where the same variant families
// recur across columns) is standardized through the ColumnScheduler +
// OracleBroker under every configuration of the acceptance matrix:
// --threads {1,4} x column-parallel {on,off} x oracle cache {on,off}.
//
// Emits one JSON line per configuration so runs land in the bench
// trajectory. Every line reports `byte_identical` against the serial
// baseline (the pipeline's determinism contract) and the broker counters
// (`cache_hits` > 0 is the "oracle calls strictly reduced" criterion).
// `hardware_threads` contextualizes the speedup: on a single-core
// container the parallel legs cannot beat serial by construction.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "pipeline/pipeline.h"

namespace {

using namespace ustl;
using namespace ustl::bench;

constexpr size_t kColumns = 4;

Table MakeMultiColumnTable(const GeneratedDataset& data) {
  std::vector<std::string> names;
  for (size_t i = 1; i <= kColumns; ++i) {
    names.push_back("value" + std::to_string(i));
  }
  Table table(names);
  for (size_t c = 0; c < data.column.size(); ++c) {
    size_t cluster = table.AddCluster();
    for (const std::string& value : data.column[c]) {
      table.AddRecord(cluster, std::vector<std::string>(kColumns, value));
    }
  }
  return table;
}

struct ConfigResult {
  double seconds = 0.0;
  std::string fingerprint;
  OracleBrokerStats stats;
};

ConfigResult RunConfig(const GeneratedDataset& data, int threads,
                       bool column_parallel, bool cache) {
  Table table = MakeMultiColumnTable(data);
  SimulatedOracle oracle = MakeOracle(data);
  PipelineOptions options;
  options.framework.budget_per_column = 100;
  options.column_parallel = column_parallel;
  options.num_threads = threads;
  options.broker.cache_verdicts = cache;
  Timer timer;
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  ConfigResult result;
  result.seconds = timer.ElapsedSeconds();
  result.fingerprint = FingerprintConsolidation(table, run.golden_records);
  result.stats = run.oracle_stats;
  return result;
}

}  // namespace

int main() {
  PrintEnvironmentJson("pipeline_columns");
  const double scale = BenchScale(0.15);
  printf("=== Pipeline: column-parallel consolidation over %zu replicated "
         "Address columns (scale=%.2f) ===\n\n",
         kColumns, scale);

  AddressGenOptions gen;
  gen.scale = scale;
  gen.seed = BenchSeed() + 11;
  GeneratedDataset data = GenerateAddressDataset(gen);
  const unsigned cores = std::thread::hardware_concurrency();

  struct Config {
    int threads;
    bool column_parallel;
    bool cache;
  };
  const std::vector<Config> configs = {
      {1, false, false},  // the serial no-cache baseline (Algorithm 1)
      {1, false, true},
      {4, true, false},
      {4, true, true},
  };

  ConfigResult baseline;
  for (const Config& config : configs) {
    ConfigResult result =
        RunConfig(data, config.threads, config.column_parallel, config.cache);
    if (baseline.fingerprint.empty()) baseline = result;
    printf("{\"bench\": \"pipeline_columns\", \"threads\": %d, "
           "\"column_parallel\": %s, \"oracle_cache\": %s, "
           "\"columns\": %zu, \"clusters\": %zu, \"hardware_threads\": %u, "
           "\"seconds\": %.4f, \"speedup\": %.2f, \"questions\": %zu, "
           "\"oracle_calls\": %zu, \"cache_hits\": %zu, "
           "\"max_batch\": %zu, \"byte_identical\": %s}\n",
           config.threads, config.column_parallel ? "true" : "false",
           config.cache ? "true" : "false", kColumns, data.column.size(),
           cores, result.seconds,
           result.seconds > 0 ? baseline.seconds / result.seconds : 0.0,
           result.stats.questions, result.stats.backend_calls,
           result.stats.cache_hits, result.stats.max_batch,
           result.fingerprint == baseline.fingerprint ? "true" : "false");
  }

  printf("\nReading: every configuration must report byte_identical: true "
         "— scheduling\nnever changes output. With the cache on, "
         "oracle_calls drops to the distinct-\nquestion count (one "
         "column's worth here, since the columns are replicas);\nspeedup "
         "> 1 additionally needs hardware_threads > 1.\n");
  return 0;
}

// Figure 10 (Appendix F): recall of standardizing variant values with and
// without the two affix string functions (Prefix/Suffix, Appendix D).
// Expected shape (paper): Affix >= NoAffix everywhere, with a visible gap
// wherever abbreviation families (Street -> St) matter; precision stays
// ~100% for both.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Figure 10: recall with/without affix functions (scale=%.2f) "
         "===\n\n",
         BenchScale());
  for (const BenchDataset& bench : MakeBenchDatasets(BenchScale(),
                                                     BenchSeed())) {
    Trajectory with_affix =
        RunBudgetTrajectory(bench.data, bench.budget, true, /*affix=*/true);
    Trajectory without_affix =
        RunBudgetTrajectory(bench.data, bench.budget, true, /*affix=*/false);
    std::vector<std::vector<double>> rows;
    size_t step = bench.budget >= 200 ? 20 : 10;
    for (size_t k = 0; k <= bench.budget; k += step) {
      rows.push_back({static_cast<double>(k), Recall(without_affix[k]),
                      Recall(with_affix[k])});
    }
    printf("%s\n",
           RenderSeries("Figure 10 (recall) — " + bench.data.name,
                        {"groups_confirmed", "NoAffix", "Affix"}, rows)
               .c_str());
  }
  return 0;
}

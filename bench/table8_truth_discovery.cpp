// Table 8: precision of truth discovery before and after standardizing
// variant values with the pipeline. The paper reports majority consensus
// (MC) only; rows for TruthFinder, ACCU and the reliability-weighted vote
// (consolidate/fusion.h, over the simulated source model) extend the
// experiment to the fusion methods Section 9 cites. Expected shape
// (paper, MC): clear improvement on every dataset, most dramatic where
// variants dominate (JournalTitle: .335 -> .840); the fusion rows should
// improve at least as much, since standardization restores the textual
// agreement signal they depend on.
//
// Correctness of a golden value is judged by the majority ground-truth id
// among the cells supporting the winning string (see DESIGN.md: cell
// identities survive standardization, strings do not).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "consolidate/fusion.h"
#include "consolidate/truth_discovery.h"
#include "datagen/sources.h"

namespace {

using namespace ustl;

// Precision of an arbitrary golden assignment against cell-level truth.
// `strict` counts an abstention (no golden value, e.g. an MC tie) as a
// failure instead of skipping the cluster; variant values split votes and
// cause ties, so the strict metric is where standardization shows most.
double GoldenPrecision(
    const GeneratedDataset& data, const Column& column,
    const std::vector<std::optional<std::string>>& golden,
    bool strict = false) {
  size_t correct = 0, produced = 0;
  for (size_t c = 0; c < column.size(); ++c) {
    if (!golden[c].has_value()) {
      if (strict) ++produced;
      continue;
    }
    ++produced;
    std::map<int, int> votes;
    for (size_t r = 0; r < column[c].size(); ++r) {
      if (column[c][r] == *golden[c]) ++votes[data.cell_truth[c][r]];
    }
    int best_id = -1, best_votes = -1;
    for (auto [id, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_id = id;
      }
    }
    correct += best_id == data.cluster_true_id[c];
  }
  return produced == 0 ? 0.0 : static_cast<double>(correct) / produced;
}

std::vector<std::optional<std::string>> RunMethod(
    FusionMethod method, const Column& column,
    const SourceAssignment& sources) {
  switch (method) {
    case FusionMethod::kMajority: {
      std::vector<std::optional<std::string>> golden;
      golden.reserve(column.size());
      for (const auto& cluster : column) {
        golden.push_back(MajorityValue(cluster));
      }
      return golden;
    }
    case FusionMethod::kWeightedVote:
      return WeightedVote(column, sources.source_of, sources.reliability)
          .golden;
    case FusionMethod::kTruthFinder:
      return TruthFinder(column, sources.source_of, sources.num_sources())
          .golden;
    case FusionMethod::kAccu:
      return AccuFusion(column, sources.source_of, sources.num_sources())
          .golden;
  }
  return {};
}

}  // namespace

int main() {
  using namespace ustl::bench;
  printf("=== Table 8: truth-discovery precision before/after "
         "standardization (scale=%.2f) ===\n\n",
         BenchScale());

  const FusionMethod methods[] = {
      FusionMethod::kMajority, FusionMethod::kTruthFinder,
      FusionMethod::kAccu, FusionMethod::kWeightedVote};

  TextTable table({"method", "stage", "AuthorList", "Address",
                   "JournalTitle"});
  std::map<FusionMethod, std::vector<std::string>> before_rows, after_rows;
  for (FusionMethod m : methods) {
    before_rows[m] = {FusionMethodName(m), "before"};
    after_rows[m] = {FusionMethodName(m), "after"};
  }
  std::vector<std::string> produced_row = {"clusters resolved", "(MC after)"};
  std::vector<std::string> strict_before = {"MC strict", "before"};
  std::vector<std::string> strict_after = {"MC strict", "after"};

  for (const BenchDataset& bench : MakeBenchDatasets(BenchScale(),
                                                     BenchSeed())) {
    SourceModelOptions source_options;
    source_options.num_sources = 6;
    source_options.seed = BenchSeed() + 31;
    SourceAssignment sources = AssignSources(bench.data, source_options);

    SimulatedOracle oracle = MakeOracle(bench.data);
    OracleBroker broker(&oracle);  // framework path: through the subsystem
    FrameworkOptions options;
    options.budget_per_column = bench.budget;
    Column column = bench.data.column;
    StandardizeColumn(&column, &broker, options);

    for (FusionMethod m : methods) {
      before_rows[m].push_back(Fmt(
          GoldenPrecision(bench.data, bench.data.column,
                          RunMethod(m, bench.data.column, sources)),
          3));
      after_rows[m].push_back(
          Fmt(GoldenPrecision(bench.data, column,
                              RunMethod(m, column, sources)),
              3));
    }
    strict_before.push_back(
        Fmt(GoldenPrecision(bench.data, bench.data.column,
                            RunMethod(FusionMethod::kMajority,
                                      bench.data.column, sources),
                            /*strict=*/true),
            3));
    strict_after.push_back(
        Fmt(GoldenPrecision(bench.data, column,
                            RunMethod(FusionMethod::kMajority, column,
                                      sources),
                            /*strict=*/true),
            3));

    size_t produced = 0;
    for (const auto& cluster : column) {
      produced += MajorityValue(cluster).has_value();
    }
    produced_row.push_back(std::to_string(produced) + "/" +
                           std::to_string(column.size()));
  }

  for (FusionMethod m : methods) {
    table.AddRow(before_rows[m]);
    table.AddRow(after_rows[m]);
  }
  table.AddRow(strict_before);
  table.AddRow(strict_after);
  table.AddRow(produced_row);
  printf("%s\n", table.Render().c_str());
  printf("Paper (MC rows): before .51/.32/.335, after .65/.47/.840.\n"
         "Fusion rows use the simulated source model (6 sources, "
         "reliability 0.55-0.95).\n");
  return 0;
}

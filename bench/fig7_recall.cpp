// Figure 7: recall of standardizing variant values vs #groups confirmed.
// Expected shape (paper): Group >> Trifacta > Single; Group reaches
// roughly 0.6-0.8 at the budget, Single stays low, Trifacta is a flat
// partial-coverage line.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Figure 7: recall vs #groups confirmed (scale=%.2f) ===\n\n",
         BenchScale());
  for (const BenchDataset& bench : MakeBenchDatasets(BenchScale(),
                                                     BenchSeed())) {
    PrintFigurePanel("Figure 7 (recall)", bench, &Recall);
  }
  return 0;
}

// Table 6: dataset statistics — cluster sizes, distinct in-cluster value
// pairs, and the variant/conflict pair split, for the three generated
// dataset analogs. Expected shape (paper): AuthorList has the largest
// clusters, JournalTitle the smallest and the highest variant fraction
// (74%), Address the most conflict-heavy mix (18% variant).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Table 6: dataset details (scale=%.2f) ===\n\n", BenchScale());
  TextTable table({"", "AuthorList", "Address", "JournalTitle"});
  std::vector<DatasetStats> stats;
  for (const BenchDataset& bench : MakeBenchDatasets(BenchScale(),
                                                     BenchSeed())) {
    stats.push_back(ComputeStats(bench.data));
  }
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const DatasetStats& s : stats) cells.push_back(getter(s));
    table.AddRow(cells);
  };
  row("records", [](const DatasetStats& s) {
    return std::to_string(s.num_records);
  });
  row("clusters", [](const DatasetStats& s) {
    return std::to_string(s.num_clusters);
  });
  row("avg/min/max cluster size", [](const DatasetStats& s) {
    return Fmt(s.avg_cluster_size, 1) + "/" +
           std::to_string(s.min_cluster_size) + "/" +
           std::to_string(s.max_cluster_size);
  });
  row("# of distinct value pairs", [](const DatasetStats& s) {
    return std::to_string(s.distinct_value_pairs);
  });
  row("variant value pairs %", [](const DatasetStats& s) {
    return Fmt(100 * s.variant_pair_fraction, 1) + "%";
  });
  row("conflict value pairs %", [](const DatasetStats& s) {
    return Fmt(100 * s.conflict_pair_fraction, 1) + "%";
  });
  printf("%s\n", table.Render().c_str());
  printf("Paper (full-size originals): avg cluster 26.9/5.8/1.8, variant%% "
         "26.5/18/74.\n");
  return 0;
}

// Figure 8: Matthews correlation coefficient vs #groups confirmed.
// Expected shape (paper): Group best overall, beating Trifacta by up to
// ~0.2 and Single by up to ~0.4.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Figure 8: MCC vs #groups confirmed (scale=%.2f) ===\n\n",
         BenchScale());
  for (const BenchDataset& bench : MakeBenchDatasets(BenchScale(),
                                                     BenchSeed())) {
    PrintFigurePanel("Figure 8 (MCC)", bench, &Mcc);
  }
  return 0;
}

// Figure 9: group-generation time. OneShot (vanilla Algorithm 2),
// EarlyTerm (Algorithm 2 + Algorithm 4) pay their full partitioning cost
// upfront; Incremental (Algorithms 5-7) pays per invocation. Expected
// shape (paper): EarlyTerm beats OneShot by 2-10x; Incremental's first
// invocation beats both upfront costs by orders of magnitude.
//
// The vanilla OneShot search is capped (like the paper's 1e5-second runs
// we cannot afford); when the cap bites the reported time is a lower
// bound, marked with ">=".
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  const double scale = BenchScale(0.1);
  printf("=== Figure 9: group generation time (scale=%.2f) ===\n\n", scale);
  for (const BenchDataset& bench : MakeBenchDatasets(scale, BenchSeed())) {
    ReplacementStore store(bench.data.column, CandidateGenOptions{});
    const std::vector<StringPair>& pairs = store.pairs();
    printf("# %s: %zu candidate replacements\n", bench.data.name.c_str(),
           pairs.size());

    GroupingOptions options;
    constexpr uint64_t kOneShotCap = 30'000'000;

    Timer oneshot_timer;
    UpfrontStats oneshot_stats;
    GroupAllUpfront(pairs, options, /*early_termination=*/false,
                    &oneshot_stats, kOneShotCap);
    printf("OneShot   upfront: %s%.3f s (%llu expansions%s)\n",
           oneshot_stats.truncated ? ">= " : "", oneshot_stats.seconds,
           static_cast<unsigned long long>(oneshot_stats.expansions),
           oneshot_stats.truncated ? ", capped" : "");

    UpfrontStats earlyterm_stats;
    GroupAllUpfront(pairs, options, /*early_termination=*/true,
                    &earlyterm_stats);
    printf("EarlyTerm upfront: %.3f s (%llu expansions, %zu groups)\n",
           earlyterm_stats.seconds,
           static_cast<unsigned long long>(earlyterm_stats.expansions),
           earlyterm_stats.num_groups);

    GroupingEngine engine(pairs, options);
    size_t budget = bench.budget;
    printf("Incremental per-invocation seconds (first %zu groups):\n",
           budget);
    double cumulative = 0;
    double first_cost = 0;
    for (size_t k = 1; k <= budget; ++k) {
      Timer timer;
      auto group = engine.Next();
      double elapsed = timer.ElapsedSeconds();
      cumulative += elapsed;
      if (k == 1) first_cost = elapsed;
      if (!group.has_value()) {
        printf("  (exhausted after %zu groups)\n", k - 1);
        break;
      }
      if (k <= 5 || k % 25 == 0) {
        printf("  group %3zu: %.4f s (size %zu, cumulative %.3f s)\n", k,
               elapsed, group->size(), cumulative);
      }
    }
    printf("Upfront-cost ratio EarlyTerm/Incremental-first: %.1fx "
           "(%.3f s vs %.4f s)\n\n",
           first_cost > 0 ? earlyterm_stats.seconds / first_cost : 0.0,
           earlyterm_stats.seconds, first_cost);
  }
  return 0;
}

// Ablations for the design choices DESIGN.md calls out: structure
// refinement (Section 7.2), the Appendix-E term scorer, the maximum path
// length theta (Section 8.2), and token-aligned labels. Reports grouping
// cost and group counts on the Address analog.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

namespace {

using namespace ustl;

struct AblationResult {
  double seconds = 0;
  size_t groups = 0;
  size_t multi_groups = 0;  // groups with >= 2 members
  uint64_t expansions = 0;
};

AblationResult RunConfig(const std::vector<StringPair>& pairs,
                         GroupingOptions options, size_t max_groups) {
  Timer timer;
  GroupingEngine engine(pairs, options);
  AblationResult result;
  while (result.groups < max_groups) {
    auto group = engine.Next();
    if (!group.has_value()) break;
    ++result.groups;
    result.multi_groups += group->size() >= 2;
  }
  result.seconds = timer.ElapsedSeconds();
  result.expansions = engine.stats().expansions;
  return result;
}

}  // namespace

int main() {
  using namespace ustl::bench;
  const double scale = BenchScale(0.15);
  printf("=== Ablations on Address (scale=%.2f, first 100 groups) ===\n\n",
         scale);
  AddressGenOptions gen;
  gen.scale = scale;
  gen.seed = BenchSeed() + 1;
  GeneratedDataset data = GenerateAddressDataset(gen);
  ReplacementStore store(data.column, CandidateGenOptions{});
  const std::vector<StringPair>& pairs = store.pairs();
  printf("%zu candidate replacements\n\n", pairs.size());

  TextTable table({"config", "seconds", "groups", "multi-groups",
                   "expansions"});
  auto add = [&](const std::string& name, GroupingOptions options) {
    fprintf(stderr, "[ablation] running: %s\n", name.c_str());
    AblationResult r = RunConfig(pairs, options, 100);
    fprintf(stderr, "[ablation] done:    %s (%.3fs)\n", name.c_str(),
            r.seconds);
    table.AddRow({name, Fmt(r.seconds, 3), std::to_string(r.groups),
                  std::to_string(r.multi_groups),
                  std::to_string(r.expansions)});
  };

  add("default (struct+scorer+theta6)", GroupingOptions{});

  // Without structure refinement every replacement lands in one graph set
  // and the label space explodes; Section 8.2's mitigation (bound the
  // search) keeps the config measurable. Groups stay valid, only the
  // "largest first" guarantee weakens for truncated searches.
  GroupingOptions no_structure;
  no_structure.structure_refinement = false;
  no_structure.max_expansions_per_search = 20000;
  no_structure.max_total_expansions = 400000;
  add("no structure refinement (bounded)", no_structure);

  GroupingOptions no_scorer;
  no_scorer.use_term_scorer = false;
  add("no term scorer", no_scorer);

  GroupingOptions theta4;
  theta4.max_path_len = 4;
  add("theta = 4", theta4);

  GroupingOptions theta8;
  theta8.max_path_len = 8;
  add("theta = 8", theta8);

  GroupingOptions no_affix;
  no_affix.graph.enable_affix = true;
  no_affix.graph.enable_affix = false;
  add("no affix labels", no_affix);

  // Appendix-E sampling: counting over 150 sampled graphs keeps posting
  // lists short; the same expansion budget buys far more groups on the
  // unpartitioned input.
  // Sampling (Appendix E) cuts the cost per expansion ~3x by keeping the
  // intersected lists short, but the unpartitioned label space still
  // exhausts any reasonable expansion budget: structure refinement is the
  // optimization that matters, sampling only softens its absence.
  GroupingOptions sampled;
  sampled.structure_refinement = false;
  sampled.max_expansions_per_search = 20000;
  sampled.max_total_expansions = 400000;
  sampled.pivot_sample_size = 150;
  add("no structure + sampling (k=150)", sampled);

  GroupingOptions sampled_struct;
  sampled_struct.pivot_sample_size = 100;
  add("default + sampling (k=100)", sampled_struct);

  printf("%s\n", table.Render().c_str());
  printf("Reading: structure refinement is what makes grouping tractable "
         "(without it the\nexpansion budget is exhausted after a handful of "
         "groups); larger theta finds no\nadditional multi-groups on this "
         "workload.\n");
  return 0;
}

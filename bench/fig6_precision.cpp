// Figure 6: precision of standardizing variant values as a function of the
// number of replacement groups confirmed by the human, for the three
// datasets and the three methods (Trifacta baseline, Single, Group).
// Expected shape (paper): Single = 1.0, Group >= 0.99, Trifacta >= 0.97.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Figure 6: precision vs #groups confirmed (scale=%.2f) ===\n\n",
         BenchScale());
  for (const BenchDataset& bench : MakeBenchDatasets(BenchScale(),
                                                     BenchSeed())) {
    PrintFigurePanel("Figure 6 (precision)", bench, &Precision);
  }
  return 0;
}

// Shared plumbing for the benchmark harnesses that regenerate the paper's
// tables and figures. Each harness is a standalone binary that prints the
// same rows/series the paper reports; USTL_BENCH_SCALE (default 0.2)
// scales the generated datasets so the whole suite runs in minutes on a
// laptop (the paper used 17k-55k-record datasets on a 128 GB server).
#ifndef USTL_BENCH_BENCH_UTIL_H_
#define USTL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "datagen/generators.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "pipeline/oracle_broker.h"
#include "wrangler/scripts.h"

namespace ustl {
namespace bench {

inline double BenchScale(double fallback = 0.5) {
  const char* env = std::getenv("USTL_BENCH_SCALE");
  if (env == nullptr) return fallback;
  double value = std::atof(env);
  return value > 0 ? value : fallback;
}

inline uint64_t BenchSeed() {
  const char* env = std::getenv("USTL_BENCH_SEED");
  return env == nullptr ? 17 : std::strtoull(env, nullptr, 10);
}

/// One environment-attribution line per JSON-emitting bench binary, so a
/// recorded trajectory says what machine and toolchain produced it. The
/// "environment" variant carries no gated metrics — check_bench.py keys
/// gates by (bench, variant) and never looks this line up.
inline void PrintEnvironmentJson(const char* bench_name) {
  char compiler[64];
#if defined(__clang__)
  std::snprintf(compiler, sizeof(compiler), "clang %d.%d.%d",
                __clang_major__, __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::snprintf(compiler, sizeof(compiler), "gcc %d.%d.%d", __GNUC__,
                __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  std::snprintf(compiler, sizeof(compiler), "unknown");
#endif
#if defined(NDEBUG)
  const char* build_type = "Release";
#else
  const char* build_type = "Debug";
#endif
  std::printf(
      "{\"bench\": \"%s\", \"variant\": \"environment\", "
      "\"hardware_threads\": %u, \"compiler\": \"%s\", "
      "\"build_type\": \"%s\"}\n",
      bench_name, std::thread::hardware_concurrency(), compiler, build_type);
}

/// The three datasets with their paper budgets (200/100/100 groups).
struct BenchDataset {
  GeneratedDataset data;
  size_t budget = 100;
  const WranglerScript* wrangler = nullptr;
};

inline std::vector<BenchDataset> MakeBenchDatasets(double scale,
                                                   uint64_t seed) {
  AllDatasets all = GenerateAllDatasets(scale, seed);
  std::vector<BenchDataset> out(3);
  out[0].data = std::move(all.author_list);
  out[0].budget = 200;
  out[0].wrangler = &AuthorListWranglerScript();
  out[1].data = std::move(all.address);
  out[1].budget = 100;
  out[1].wrangler = &AddressWranglerScript();
  out[2].data = std::move(all.journal_title);
  out[2].budget = 100;
  out[2].wrangler = &JournalTitleWranglerScript();
  return out;
}

inline std::vector<SampledPair> SampleFor(const GeneratedDataset& data) {
  return SampleLabeledPairs(
      data.column,
      [&](size_t c, size_t a, size_t b) {
        return data.IsVariantCellPair(c, a, b);
      },
      1000, 7);
}

inline SimulatedOracle MakeOracle(const GeneratedDataset& data,
                                  double error_rate = 0.0) {
  SimulatedOracle::Options options;
  options.error_rate = error_rate;
  return SimulatedOracle(
      [&data](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, options);
}

/// Metric trajectories for one method: entry k is the confusion matrix
/// after k groups were confirmed (entry 0 = untouched data).
using Trajectory = std::vector<Confusion>;

/// Runs the grouped pipeline (the paper's Group method) or the Single
/// baseline once, recording the confusion matrix after every presented
/// group.
inline Trajectory RunBudgetTrajectory(const GeneratedDataset& data,
                                      size_t budget, bool group_method,
                                      bool affix = true) {
  std::vector<SampledPair> samples = SampleFor(data);
  Trajectory trajectory;
  trajectory.push_back(EvaluateIdentity(data.column, samples));
  SimulatedOracle oracle = MakeOracle(data);
  // Questions flow through the pipeline subsystem's broker, like the CLI's
  // batch path; verdicts are unchanged (order-independence contract), the
  // oracle is just deduplicated.
  OracleBroker broker(&oracle);
  FrameworkOptions options;
  options.budget_per_column = budget;
  options.grouping.graph.enable_affix = affix;
  options.progress_callback = [&](size_t, const Column& column) {
    trajectory.push_back(EvaluateIdentity(column, samples));
  };
  Column column = data.column;
  if (group_method) {
    StandardizeColumn(&column, &broker, options);
  } else {
    StandardizeColumnSingle(&column, &broker, options);
  }
  // Pad to full budget (exhausted early = metrics freeze).
  while (trajectory.size() <= budget) trajectory.push_back(trajectory.back());
  return trajectory;
}

/// The wrangler baseline's (budget-independent) confusion matrix.
inline Confusion RunWrangler(const BenchDataset& bench) {
  std::vector<SampledPair> samples = SampleFor(bench.data);
  Column column = bench.data.column;
  bench.wrangler->ApplyToColumn(&column);
  return EvaluateIdentity(column, samples);
}

/// Prints one figure panel (x = #groups confirmed, series Trifacta /
/// Single / Group) for the metric selected by `metric`.
inline void PrintFigurePanel(const std::string& figure,
                             const BenchDataset& bench,
                             double (*metric)(const Confusion&)) {
  Trajectory group = RunBudgetTrajectory(bench.data, bench.budget, true);
  Trajectory single = RunBudgetTrajectory(bench.data, bench.budget, false);
  Confusion wrangler = RunWrangler(bench);
  std::vector<std::vector<double>> rows;
  size_t step = bench.budget >= 200 ? 20 : 10;
  for (size_t k = 0; k <= bench.budget; k += step) {
    rows.push_back({static_cast<double>(k), metric(wrangler),
                    metric(single[k]), metric(group[k])});
  }
  printf("%s", RenderSeries(figure + " — " + bench.data.name,
                            {"groups_confirmed", "Trifacta", "Single",
                             "Group"},
                            rows)
                   .c_str());
  printf("\n");
}

}  // namespace bench
}  // namespace ustl

#endif  // USTL_BENCH_BENCH_UTIL_H_

// Micro-kernels (google-benchmark): transformation-graph construction,
// inverted-index build, posting-list intersection, pivot search, candidate
// generation, and structure signatures. These are the inner loops behind
// Figure 9.
#include <benchmark/benchmark.h>

#include "datagen/generators.h"
#include "graph/graph_builder.h"
#include "grouping/grouping.h"
#include "grouping/pivot_search.h"
#include "index/inverted_index.h"
#include "replace/candidate_gen.h"
#include "consolidate/fusion.h"
#include "dsl/parser.h"
#include "io/csv.h"
#include "text/alignment.h"
#include "text/structure.h"

namespace ustl {
namespace {

const std::vector<StringPair>& NamePairs() {
  static const auto& pairs = *new std::vector<StringPair>{
      {"Lee, Mary", "M. Lee"},       {"Smith, James", "J. Smith"},
      {"Brown, Anna", "A. Brown"},   {"Clark, Susan", "S. Clark"},
      {"Walker, John", "J. Walker"}, {"Turner, Ruth", "R. Turner"},
      {"Street", "St"},              {"Avenue", "Ave"},
      {"Boulevard", "Blvd"},         {"Wisconsin", "WI"},
      {"9th", "9"},                  {"3rd", "3"},
  };
  return pairs;
}

void BM_GraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    LabelInterner interner;
    GraphBuilder builder(GraphBuilderOptions{}, &interner);
    for (const StringPair& pair : NamePairs()) {
      benchmark::DoNotOptimize(builder.Build(pair.lhs, pair.rhs));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(NamePairs().size()));
}
BENCHMARK(BM_GraphBuild);

void BM_IndexBuild(benchmark::State& state) {
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  for (const StringPair& pair : NamePairs()) {
    graphs.push_back(std::move(builder.Build(pair.lhs, pair.rhs)).value());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(InvertedIndex::Build(graphs));
  }
}
BENCHMARK(BM_IndexBuild);

void BM_PostingExtend(benchmark::State& state) {
  PostingList current, label;
  for (uint32_t g = 0; g < 256; ++g) {
    current.push_back(Posting{g, 1, static_cast<int>(g % 7) + 2});
    label.push_back(Posting{g, static_cast<int>(g % 7) + 2, 12});
  }
  std::vector<char> alive(256, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InvertedIndex::Extend(current, label, &alive));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PostingExtend);

void BM_PivotSearch(benchmark::State& state) {
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  GraphSet set = std::move(GraphSet::Build(NamePairs(), builder)).value();
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  for (auto _ : state) {
    std::vector<int> lower_bounds(set.size(), 1);
    for (GraphId g = 0; g < set.size(); ++g) {
      benchmark::DoNotOptimize(searcher.Search(g, 0, &lower_bounds));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(set.size()));
}
BENCHMARK(BM_PivotSearch);

void BM_CandidateGeneration(benchmark::State& state) {
  AddressGenOptions options;
  options.scale = 0.03;
  GeneratedDataset data = GenerateAddressDataset(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateCandidates(data.column, CandidateGenOptions{}));
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_TokenLcsAlign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TokenLcsAlign("9 East Oak Street, 02141 Wisconsin",
                      "9th E Oak St, 02141 WI"));
  }
}
BENCHMARK(BM_TokenLcsAlign);

void BM_StructureSignature(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(StructureOf("9th E Oak St, 02141 WI"));
  }
}
BENCHMARK(BM_StructureSignature);

void BM_EndToEndGrouping(benchmark::State& state) {
  AddressGenOptions options;
  options.scale = 0.03;
  GeneratedDataset data = GenerateAddressDataset(options);
  CandidateSet candidates =
      GenerateCandidates(data.column, CandidateGenOptions{});
  for (auto _ : state) {
    GroupingEngine engine(candidates.pairs, GroupingOptions{});
    size_t count = 0;
    while (count < 20 && engine.Next().has_value()) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EndToEndGrouping);

void BM_CsvParse(benchmark::State& state) {
  // A realistic clustered CSV chunk with quoting.
  std::string doc = "cluster,value\n";
  for (int i = 0; i < 200; ++i) {
    doc += "c" + std::to_string(i / 4) + ",\"" + std::to_string(i) +
           "th St, 02141 \"\"WI\"\"\"\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseCsv(doc));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_CsvParse);

void BM_ProgramParseRoundTrip(benchmark::State& state) {
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  Program program({
      StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                       PosFn::MatchPos(tc, -1, Dir::kEnd)),
      StringFn::ConstantStr(". "),
      StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                       PosFn::MatchPos(tl, 1, Dir::kEnd)),
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseProgram(SerializeProgram(program)));
  }
}
BENCHMARK(BM_ProgramParseRoundTrip);

void BM_TruthFinderIteration(benchmark::State& state) {
  // 200 clusters x 5 sources with disagreement.
  Column column(200);
  SourceMatrix sources(200);
  for (size_t c = 0; c < column.size(); ++c) {
    for (int s = 0; s < 5; ++s) {
      column[c].push_back(s % 2 == 0 ? "t" + std::to_string(c)
                                     : "w" + std::to_string(c) +
                                           std::to_string(s));
      sources[c].push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TruthFinder(column, sources, 5));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TruthFinderIteration);

}  // namespace
}  // namespace ustl

BENCHMARK_MAIN();

// Micro-kernels: transformation-graph construction, inverted-index build
// (serial and sharded), posting-list intersection (seed vs. fused
// zero-allocation kernel), pivot search, candidate generation, and
// structure signatures. These are the inner loops behind Figure 9.
//
// Uses Google Benchmark when available (USTL_HAVE_GOOGLE_BENCHMARK); a
// minimal timer-based fallback harness below covers the subset of the API
// this file needs, so the binary always builds. Independent of either
// harness, main() ends with a posting-kernel comparison that prints JSON
// lines (seed vs. fused Extend, serial vs. sharded Build, allocations per
// join) for the bench trajectory.
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#if defined(USTL_HAVE_GOOGLE_BENCHMARK)
#include <benchmark/benchmark.h>
#else
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

// Timer-based fallback implementing the tiny subset of the Google
// Benchmark API used in this file: fixed-iteration State ranges,
// DoNotOptimize, BENCHMARK registration and a runner that calibrates the
// iteration count until a run takes long enough to time.
namespace benchmark {

class State {
 public:
  explicit State(int64_t iterations) : iterations_(iterations) {}

  // Class-type iteration value with a user-provided destructor, so
  // `for (auto _ : state)` doesn't trigger -Wunused-variable (mirrors
  // the real library's behavior).
  struct IterationValue {
    ~IterationValue() {}
  };

  class iterator {
   public:
    explicit iterator(int64_t n) : n_(n) {}
    bool operator!=(const iterator& o) const { return n_ != o.n_; }
    iterator& operator++() {
      --n_;
      return *this;
    }
    IterationValue operator*() const { return IterationValue(); }

   private:
    int64_t n_;
  };
  iterator begin() { return iterator(iterations_); }
  iterator end() { return iterator(0); }

  int64_t iterations() const { return iterations_; }
  void SetItemsProcessed(int64_t) {}
  void SetBytesProcessed(int64_t) {}

 private:
  int64_t iterations_;
};

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct RegisteredBenchmark {
  const char* name;
  void (*fn)(State&);
};

inline std::vector<RegisteredBenchmark>& Registry() {
  static auto& registry = *new std::vector<RegisteredBenchmark>();
  return registry;
}

struct Registrar {
  Registrar(const char* name, void (*fn)(State&)) {
    Registry().push_back({name, fn});
  }
};

inline void RunAllRegistered() {
  printf("(google-benchmark not installed: timer fallback, calibrated "
         "fixed-iteration runs)\n");
  printf("%-28s %16s %12s\n", "Benchmark", "ns/iter", "iters");
  for (const RegisteredBenchmark& bench : Registry()) {
    int64_t iters = 1;
    double seconds = 0.0;
    for (;;) {
      State state(iters);
      const auto start = std::chrono::steady_clock::now();
      bench.fn(state);
      seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      if (seconds >= 0.1 || iters >= (int64_t{1} << 28)) break;
      iters *= 4;
    }
    printf("%-28s %16.1f %12lld\n", bench.name,
           seconds * 1e9 / static_cast<double>(iters),
           static_cast<long long>(iters));
  }
}

}  // namespace benchmark

#define BENCHMARK(fn) \
  static ::benchmark::Registrar ustl_bench_registrar_##fn(#fn, fn)
#endif  // USTL_HAVE_GOOGLE_BENCHMARK

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "consolidate/fusion.h"
#include "datagen/generators.h"
#include "dsl/parser.h"
#include "graph/graph_builder.h"
#include "grouping/grouping.h"
#include "grouping/pivot_search.h"
#include "index/block_postings.h"
#include "index/inverted_index.h"
#include "io/csv.h"
#include "replace/candidate_gen.h"
#include "text/alignment.h"
#include "text/structure.h"

// Global allocation counter: lets the kernel comparison report heap
// allocations per join, which is how the zero-allocation claim of
// InvertedIndex::ExtendInto is verified mechanically.
namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

// GCC flags free() inside a replaced sized operator delete as mismatched
// with the replaced operator new it can't see into; malloc/free-backed
// replacement of the whole family is well-defined, so silence it here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace ustl {
namespace {

const std::vector<StringPair>& NamePairs() {
  static const auto& pairs = *new std::vector<StringPair>{
      {"Lee, Mary", "M. Lee"},       {"Smith, James", "J. Smith"},
      {"Brown, Anna", "A. Brown"},   {"Clark, Susan", "S. Clark"},
      {"Walker, John", "J. Walker"}, {"Turner, Ruth", "R. Turner"},
      {"Street", "St"},              {"Avenue", "Ave"},
      {"Boulevard", "Blvd"},         {"Wisconsin", "WI"},
      {"9th", "9"},                  {"3rd", "3"},
  };
  return pairs;
}

void BM_GraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    LabelInterner interner;
    GraphBuilder builder(GraphBuilderOptions{}, &interner);
    for (const StringPair& pair : NamePairs()) {
      benchmark::DoNotOptimize(builder.Build(pair.lhs, pair.rhs));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(NamePairs().size()));
}
BENCHMARK(BM_GraphBuild);

void BM_IndexBuild(benchmark::State& state) {
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  for (const StringPair& pair : NamePairs()) {
    graphs.push_back(std::move(builder.Build(pair.lhs, pair.rhs)).value());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(InvertedIndex::Build(graphs));
  }
}
BENCHMARK(BM_IndexBuild);

void BM_IndexBuildSharded(benchmark::State& state) {
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  for (const StringPair& pair : NamePairs()) {
    graphs.push_back(std::move(builder.Build(pair.lhs, pair.rhs)).value());
  }
  ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        InvertedIndex::Build(graphs, &pool, 0, interner.size()));
  }
}
BENCHMARK(BM_IndexBuildSharded);

void BM_PostingExtend(benchmark::State& state) {
  PostingList current, label;
  for (uint32_t g = 0; g < 256; ++g) {
    current.push_back(Posting{g, 1, static_cast<int>(g % 7) + 2});
    label.push_back(Posting{g, static_cast<int>(g % 7) + 2, 12});
  }
  std::vector<char> alive(256, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InvertedIndex::Extend(current, label, &alive));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PostingExtend);

void BM_PostingExtendInto(benchmark::State& state) {
  // Same join as BM_PostingExtend through the zero-allocation kernel: the
  // scratch list is reused across iterations, distinct count and hash
  // come fused out of the join.
  PostingList current, label;
  for (uint32_t g = 0; g < 256; ++g) {
    current.push_back(Posting{g, 1, static_cast<int>(g % 7) + 2});
    label.push_back(Posting{g, static_cast<int>(g % 7) + 2, 12});
  }
  std::vector<char> alive(256, 1);
  PostingList scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        InvertedIndex::ExtendInto(current, label, &alive, &scratch));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PostingExtendInto);

void BM_PivotSearch(benchmark::State& state) {
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  GraphSet set = std::move(GraphSet::Build(NamePairs(), builder)).value();
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  for (auto _ : state) {
    std::vector<int> lower_bounds(set.size(), 1);
    for (GraphId g = 0; g < set.size(); ++g) {
      benchmark::DoNotOptimize(searcher.Search(g, 0, &lower_bounds));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(set.size()));
}
BENCHMARK(BM_PivotSearch);

void BM_CandidateGeneration(benchmark::State& state) {
  AddressGenOptions options;
  options.scale = 0.03;
  GeneratedDataset data = GenerateAddressDataset(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateCandidates(data.column, CandidateGenOptions{}));
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_TokenLcsAlign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TokenLcsAlign("9 East Oak Street, 02141 Wisconsin",
                      "9th E Oak St, 02141 WI"));
  }
}
BENCHMARK(BM_TokenLcsAlign);

void BM_StructureSignature(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(StructureOf("9th E Oak St, 02141 WI"));
  }
}
BENCHMARK(BM_StructureSignature);

void BM_EndToEndGrouping(benchmark::State& state) {
  AddressGenOptions options;
  options.scale = 0.03;
  GeneratedDataset data = GenerateAddressDataset(options);
  CandidateSet candidates =
      GenerateCandidates(data.column, CandidateGenOptions{});
  for (auto _ : state) {
    GroupingEngine engine(candidates.pairs, GroupingOptions{});
    size_t count = 0;
    while (count < 20 && engine.Next().has_value()) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EndToEndGrouping);

void BM_CsvParse(benchmark::State& state) {
  // A realistic clustered CSV chunk with quoting.
  std::string doc = "cluster,value\n";
  for (int i = 0; i < 200; ++i) {
    doc += "c" + std::to_string(i / 4) + ",\"" + std::to_string(i) +
           "th St, 02141 \"\"WI\"\"\"\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseCsv(doc));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_CsvParse);

void BM_ProgramParseRoundTrip(benchmark::State& state) {
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  Program program({
      StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                       PosFn::MatchPos(tc, -1, Dir::kEnd)),
      StringFn::ConstantStr(". "),
      StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                       PosFn::MatchPos(tl, 1, Dir::kEnd)),
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseProgram(SerializeProgram(program)));
  }
}
BENCHMARK(BM_ProgramParseRoundTrip);

void BM_TruthFinderIteration(benchmark::State& state) {
  // 200 clusters x 5 sources with disagreement.
  Column column(200);
  SourceMatrix sources(200);
  for (size_t c = 0; c < column.size(); ++c) {
    for (int s = 0; s < 5; ++s) {
      column[c].push_back(s % 2 == 0 ? "t" + std::to_string(c)
                                     : "w" + std::to_string(c) +
                                           std::to_string(s));
      sources[c].push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TruthFinder(column, sources, 5));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TruthFinderIteration);

// ---------------------------------------------------------------------
// Posting-kernel comparison (JSON lines for the bench trajectory).

// The seed (pre-packing) per-DFS-move inner loop, reproduced as the
// baseline: allocate a fresh output list per join, full-list sort +
// unique, then a separate DistinctGraphs scan and a separate sibling-
// dedup rehash of the result — exactly the three passes ExtendInto fuses.
PostingList SeedExtend(const PostingList& current,
                       const PostingList& label_list,
                       const std::vector<char>* alive) {
  PostingList out;
  size_t i = 0, j = 0;
  while (i < current.size() && j < label_list.size()) {
    const GraphId gi = current[i].graph();
    const GraphId gj = label_list[j].graph();
    if (gi < gj) {
      ++i;
      continue;
    }
    if (gj < gi) {
      ++j;
      continue;
    }
    if (alive != nullptr && !(*alive)[gi]) {
      while (i < current.size() && current[i].graph() == gi) ++i;
      while (j < label_list.size() && label_list[j].graph() == gi) ++j;
      continue;
    }
    size_t i_end = i;
    while (i_end < current.size() && current[i_end].graph() == gi) ++i_end;
    size_t j_end = j;
    while (j_end < label_list.size() && label_list[j_end].graph() == gi) {
      ++j_end;
    }
    for (size_t a = i; a < i_end; ++a) {
      for (size_t b = j; b < j_end; ++b) {
        if (current[a].end() == label_list[b].start()) {
          out.push_back(Posting(gi, current[a].start(), label_list[b].end()));
        }
      }
    }
    i = i_end;
    j = j_end;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t SeedRescanAndHash(const PostingList& list) {
  // The two follow-up passes the seed DFS made per move.
  uint64_t h = kPostingHashSeed;
  for (const Posting& p : list) {
    h ^= p.bits();
    h *= kPostingHashPrime;
  }
  return h ^ InvertedIndex::DistinctGraphs(list);
}

// Runs `body` (one "round" = `ops` joins) until it has consumed at least
// `min_seconds`, returning seconds per op.
template <typename Body>
double TimePerOp(size_t ops, double min_seconds, const Body& body) {
  Timer timer;
  size_t rounds = 0;
  do {
    body();
    ++rounds;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / static_cast<double>(rounds * ops);
}

void RunPostingKernelComparison() {
  using bench::BenchScale;
  using bench::BenchSeed;
  printf("\n=== Posting-kernel comparison (JSON for the bench trajectory) "
         "===\n\n");

  // Realistic workload: the address dataset's candidate replacements,
  // one shared interner, real label skew.
  AddressGenOptions gen;
  gen.scale = BenchScale(0.05);
  gen.seed = BenchSeed();
  GeneratedDataset data = GenerateAddressDataset(gen);
  CandidateSet candidates =
      GenerateCandidates(data.column, CandidateGenOptions{});
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  GraphSet set =
      std::move(GraphSet::Build(candidates.pairs, builder)).value();
  const InvertedIndex& index = set.index();
  const std::vector<char>& alive = set.alive_vector();

  PostingList root;
  for (GraphId g = 0; g < set.size(); ++g) root.push_back(Posting(g, 1, 1));
  std::vector<LabelId> labels;
  for (LabelId label = 0; label < interner.size(); ++label) {
    if (index.ListLength(label) > 0) labels.push_back(label);
  }
  const size_t ops = labels.size();
  const double min_seconds = 0.3;

  // Seed kernel: fresh allocation + full sort + two rescans per join.
  const double seed_per_op = TimePerOp(ops, min_seconds, [&] {
    for (LabelId label : labels) {
      PostingList out = SeedExtend(root, index.Find(label), &alive);
      benchmark::DoNotOptimize(SeedRescanAndHash(out));
    }
  });

  // Fused kernel: caller-owned scratch, stats fused into the join.
  PostingList scratch;
  const double fused_per_op = TimePerOp(ops, min_seconds, [&] {
    for (LabelId label : labels) {
      const ExtendStats stats =
          InvertedIndex::ExtendInto(root, index.Find(label), &alive, &scratch);
      benchmark::DoNotOptimize(stats);
    }
  });

  // Allocations per join in the steady state (scratch already sized).
  const int64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (LabelId label : labels) {
    benchmark::DoNotOptimize(
        InvertedIndex::ExtendInto(root, index.Find(label), &alive, &scratch));
  }
  const int64_t allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;

  printf("{\"bench\": \"posting_extend_kernel\", \"variant\": \"seed\", "
         "\"pairs\": %zu, \"labels\": %zu, \"ns_per_extend\": %.1f}\n",
         candidates.pairs.size(), ops, seed_per_op * 1e9);
  printf("{\"bench\": \"posting_extend_kernel\", \"variant\": \"fused\", "
         "\"pairs\": %zu, \"labels\": %zu, \"ns_per_extend\": %.1f, "
         "\"speedup_vs_seed\": %.2f, \"allocs_per_extend\": %.3f}\n",
         candidates.pairs.size(), ops, fused_per_op * 1e9,
         fused_per_op > 0 ? seed_per_op / fused_per_op : 0.0,
         static_cast<double>(allocs) / static_cast<double>(ops));

  // Index build: serial vs. sharded over a 4-thread pool.
  const auto& graphs = set.graphs();
  const double serial_build = TimePerOp(1, min_seconds, [&] {
    benchmark::DoNotOptimize(InvertedIndex::Build(graphs));
  });
  ThreadPool pool(4);
  const double sharded_build = TimePerOp(1, min_seconds, [&] {
    benchmark::DoNotOptimize(
        InvertedIndex::Build(graphs, &pool, 0, interner.size()));
  });
  printf("{\"bench\": \"inverted_index_build\", \"variant\": \"serial\", "
         "\"graphs\": %zu, \"labels\": %zu, \"ms_per_build\": %.3f}\n",
         graphs.size(), ops, serial_build * 1e3);
  printf("{\"bench\": \"inverted_index_build\", \"variant\": \"sharded\", "
         "\"graphs\": %zu, \"labels\": %zu, \"shards\": %d, "
         "\"hardware_threads\": %u, \"ms_per_build\": %.3f, "
         "\"speedup_vs_serial\": %.2f}\n",
         graphs.size(), ops, pool.num_threads(),
         std::thread::hardware_concurrency(), sharded_build * 1e3,
         sharded_build > 0 ? serial_build / sharded_build : 0.0);

  // Extend-heavy pivot search over the same graph set (the DFS is where
  // the fused kernel's savings land end to end).
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  const double search_per_graph = TimePerOp(set.size(), min_seconds, [&] {
    std::vector<int> lower_bounds(set.size(), 1);
    for (GraphId g = 0; g < set.size(); ++g) {
      benchmark::DoNotOptimize(searcher.Search(g, 0, &lower_bounds));
    }
  });
  printf("{\"bench\": \"pivot_search\", \"variant\": \"fused_kernel\", "
         "\"graphs\": %zu, \"us_per_search\": %.2f}\n",
         set.size(), search_per_graph * 1e6);
}

// ---------------------------------------------------------------------
// Posting-codec + skip-join comparison (ISSUE 6). Self-checking: every
// number below is printed only after the block path reproduced the raw
// path bit for bit — a bench that records garbage is worse than none.

void BenchCheck(bool ok, const char* what) {
  if (ok) return;
  fprintf(stderr, "bench self-check FAILED: %s\n", what);
  std::exit(1);
}

void RunPostingCodecComparison() {
  using bench::BenchScale;
  using bench::BenchSeed;
  printf("\n=== Posting-codec comparison (JSON for the bench trajectory) "
         "===\n\n");

  AddressGenOptions gen;
  gen.scale = BenchScale(0.05);
  gen.seed = BenchSeed();
  GeneratedDataset data = GenerateAddressDataset(gen);
  CandidateSet candidates =
      GenerateCandidates(data.column, CandidateGenOptions{});

  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  GraphSet raw_set =
      std::move(GraphSet::Build(candidates.pairs, builder)).value();
  LabelInterner block_interner;
  GraphBuilder block_builder(GraphBuilderOptions{}, &block_interner);
  IndexBuildOptions build;
  build.codec = IndexCodec::kBlock;
  GraphSet block_set = std::move(GraphSet::Build(candidates.pairs,
                                                 block_builder, nullptr,
                                                 build))
                           .value();
  const InvertedIndex& raw = raw_set.index();
  const InvertedIndex& block = block_set.index();
  BenchCheck(block.codec() == IndexCodec::kBlock, "block codec requested");
  BenchCheck(raw.NumPostings() == block.NumPostings(),
             "posting counts match");

  // Self-check: the block store materializes every raw list bit for bit.
  PostingList expect, got;
  for (LabelId label = 0; label < interner.size(); ++label) {
    raw.Materialize(label, &expect);
    block.Materialize(label, &got);
    BenchCheck(expect == got, "block list materializes bit-identically");
  }

  const size_t postings = raw.NumPostings();
  const size_t raw_bytes = raw.MemoryBytes();
  const size_t block_bytes = block.MemoryBytes();
  const BlockPostingStore::MemoryStats store_stats = block.store()->memory();
  printf("{\"bench\": \"posting_codec_memory\", \"variant\": \"raw\", "
         "\"postings\": %zu, \"bytes\": %zu, \"bytes_per_posting\": %.3f}\n",
         postings, raw_bytes,
         static_cast<double>(raw_bytes) / static_cast<double>(postings));
  printf("{\"bench\": \"posting_codec_memory\", \"variant\": \"block\", "
         "\"postings\": %zu, \"bytes\": %zu, \"bytes_per_posting\": %.3f, "
         "\"compression_ratio\": %.2f, \"blocks\": %zu, "
         "\"varint_blocks\": %zu, \"for_blocks\": %zu, "
         "\"small_lists\": %zu}\n",
         postings, block_bytes,
         static_cast<double>(block_bytes) / static_cast<double>(postings),
         static_cast<double>(raw_bytes) / static_cast<double>(block_bytes),
         store_stats.blocks, store_stats.varint_blocks,
         store_stats.for_blocks, store_stats.small_lists);

  // Decode kernel: sequential block decode of every blocked list, checked
  // against the raw lists once above.
  const double min_seconds = 0.3;
  size_t decoded_postings = 0;
  PostingList decode_buf;
  const BlockPostingStore& store = *block.store();
  for (LabelId label = 0; label < interner.size(); ++label) {
    const BlockPostingStore::LabelRef& ref = store.label(label);
    if (ref.num_blocks > 0) decoded_postings += ref.count;
  }
  BenchCheck(decoded_postings > 0, "workload produced blocked lists");
  const double decode_per_posting =
      TimePerOp(decoded_postings, min_seconds, [&] {
        for (LabelId label = 0; label < interner.size(); ++label) {
          const BlockPostingStore::LabelRef& ref = store.label(label);
          for (size_t b = 0; b < ref.num_blocks; ++b) {
            decode_buf.resize(store.block(ref, b).count);
            store.DecodeBlock(ref, b, decode_buf.data());
            benchmark::DoNotOptimize(decode_buf.data());
          }
        }
      });
  printf("{\"bench\": \"posting_codec_decode\", \"variant\": \"block\", "
         "\"postings\": %zu, \"ns_per_posting\": %.2f}\n",
         decoded_postings, decode_per_posting * 1e9);

  // Skip-join kernel: a narrow current band joined against every list.
  // Whole blocks fall outside the band, so the cursor's graph bounds do
  // real work; the raw join walks (gallops) the same lists instead.
  const std::vector<char>& alive = raw_set.alive_vector();
  PostingList band;
  const GraphId band_lo = static_cast<GraphId>(raw_set.size() / 2);
  const GraphId band_hi =
      std::min<GraphId>(band_lo + 32, static_cast<GraphId>(raw_set.size()));
  for (GraphId g = band_lo; g < band_hi; ++g) band.push_back(Posting(g, 1, 1));
  std::vector<LabelId> labels;
  for (LabelId label = 0; label < interner.size(); ++label) {
    if (raw.ListLength(label) > 0) labels.push_back(label);
  }
  const size_t ops = labels.size();

  PostingList raw_scratch;
  const double raw_join = TimePerOp(ops, min_seconds, [&] {
    for (LabelId label : labels) {
      benchmark::DoNotOptimize(InvertedIndex::ExtendInto(
          band, raw.Find(label), &alive, &raw_scratch));
    }
  });

  PostingList block_scratch, decode_scratch;
  uint64_t blocks_skipped = 0, blocks_decoded = 0;
  const double block_join = TimePerOp(ops, min_seconds, [&] {
    blocks_skipped = 0;
    blocks_decoded = 0;
    for (LabelId label : labels) {
      ExtendControl control;
      control.decode_scratch = &decode_scratch;
      benchmark::DoNotOptimize(
          InvertedIndex::ExtendInto(band, block.Postings(label), &alive,
                                    &block_scratch, &control));
      blocks_skipped += control.blocks_skipped;
      blocks_decoded += control.blocks_decoded;
    }
  });
  BenchCheck(blocks_skipped > 0, "skip-join kernel skipped blocks");

  // Self-check + steady-state allocation count in one sweep.
  const int64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (LabelId label : labels) {
    const ExtendStats raw_stats = InvertedIndex::ExtendInto(
        band, raw.Find(label), &alive, &raw_scratch);
    ExtendControl control;
    control.decode_scratch = &decode_scratch;
    const ExtendStats block_stats = InvertedIndex::ExtendInto(
        band, block.Postings(label), &alive, &block_scratch, &control);
    BenchCheck(raw_scratch == block_scratch &&
                   raw_stats.distinct_graphs == block_stats.distinct_graphs &&
                   raw_stats.hash == block_stats.hash,
               "skip-join output matches the raw join");
  }
  const int64_t join_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
  BenchCheck(join_allocs == 0, "steady-state block join allocates nothing");

  printf("{\"bench\": \"skip_join_kernel\", \"variant\": \"raw\", "
         "\"labels\": %zu, \"ns_per_extend\": %.1f}\n",
         ops, raw_join * 1e9);
  printf("{\"bench\": \"skip_join_kernel\", \"variant\": \"block\", "
         "\"labels\": %zu, \"ns_per_extend\": %.1f, "
         "\"blocks_skipped\": %llu, \"blocks_decoded\": %llu, "
         "\"allocs_per_extend\": %.3f}\n",
         ops, block_join * 1e9,
         static_cast<unsigned long long>(blocks_skipped),
         static_cast<unsigned long long>(blocks_decoded),
         static_cast<double>(join_allocs) / static_cast<double>(2 * ops));

  // End-to-end pivot search under both codecs with the early terminations
  // on — where the prune threshold actually reaches the join. The block
  // searcher must return bit-identical results.
  PivotSearcher::Options search_options;
  search_options.local_early_term = true;
  search_options.global_early_term = true;
  PivotSearcher raw_searcher(&raw_set, search_options);
  PivotSearcher block_searcher(&block_set, search_options);
  uint64_t search_skipped = 0, search_decoded = 0, search_pruned = 0;
  {
    std::vector<int> raw_bounds(raw_set.size(), 1);
    std::vector<int> block_bounds(block_set.size(), 1);
    for (GraphId g = 0; g < raw_set.size(); ++g) {
      const PivotSearcher::SearchResult a =
          raw_searcher.Search(g, 0, &raw_bounds);
      const PivotSearcher::SearchResult b =
          block_searcher.Search(g, 0, &block_bounds);
      BenchCheck(a.found == b.found && a.path == b.path &&
                     a.count == b.count && a.members == b.members,
                 "block pivot search returns identical results");
      search_skipped += b.blocks_skipped;
      search_decoded += b.blocks_decoded;
      search_pruned += b.joins_pruned;
    }
  }
  BenchCheck(search_skipped > 0, "pivot search skipped blocks");
  BenchCheck(search_pruned > 0, "pivot search pruned joins");

  const double raw_search = TimePerOp(raw_set.size(), min_seconds, [&] {
    std::vector<int> bounds(raw_set.size(), 1);
    for (GraphId g = 0; g < raw_set.size(); ++g) {
      benchmark::DoNotOptimize(raw_searcher.Search(g, 0, &bounds));
    }
  });
  const double block_search = TimePerOp(block_set.size(), min_seconds, [&] {
    std::vector<int> bounds(block_set.size(), 1);
    for (GraphId g = 0; g < block_set.size(); ++g) {
      benchmark::DoNotOptimize(block_searcher.Search(g, 0, &bounds));
    }
  });
  printf("{\"bench\": \"pivot_search_codec\", \"variant\": \"raw\", "
         "\"graphs\": %zu, \"us_per_search\": %.2f}\n",
         raw_set.size(), raw_search * 1e6);
  printf("{\"bench\": \"pivot_search_codec\", \"variant\": \"block\", "
         "\"graphs\": %zu, \"us_per_search\": %.2f, "
         "\"blocks_skipped\": %llu, \"blocks_decoded\": %llu, "
         "\"joins_pruned\": %llu}\n",
         block_set.size(), block_search * 1e6,
         static_cast<unsigned long long>(search_skipped),
         static_cast<unsigned long long>(search_decoded),
         static_cast<unsigned long long>(search_pruned));
}

}  // namespace
}  // namespace ustl

int main(int argc, char** argv) {
  ustl::bench::PrintEnvironmentJson("micro_kernels");
#if defined(USTL_HAVE_GOOGLE_BENCHMARK)
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#else
  (void)argc;
  (void)argv;
  benchmark::RunAllRegistered();
#endif
  ustl::RunPostingKernelComparison();
  ustl::RunPostingCodecComparison();
  return 0;
}

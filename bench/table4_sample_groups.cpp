// Table 4 analog: sample replacement groups our unsupervised method
// generates from the AuthorList dataset, with up to five candidate
// replacements shown per group. Expected shape (paper): coherent groups —
// list transposition, nicknames, "last, first" ordering, glued separators,
// (edt)/(author) annotation stripping.
#include <cstdio>

#include "bench_util.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

int main() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Table 4 analog: sample groups from AuthorList (scale=%.2f) "
         "===\n\n",
         BenchScale());
  AuthorListGenOptions options;
  options.scale = BenchScale();
  options.seed = BenchSeed() + 2;
  GeneratedDataset data = GenerateAuthorListDataset(options);
  ReplacementStore store(data.column, CandidateGenOptions{});

  GroupingEngine engine(store.pairs(), GroupingOptions{});
  int shown = 0;
  for (int k = 0; k < 40 && shown < 8; ++k) {
    auto group = engine.Next();
    if (!group.has_value()) break;
    if (group->pure_constant || group->size() < 3) continue;
    ++shown;
    printf("Group %c (%zu replacements)  [structure %s]\n",
           'A' + shown - 1, group->size(), group->structure.c_str());
    printf("  program: %s\n", group->program.c_str());
    for (size_t i = 0;
         i < group->member_pair_indices.size() && i < 5; ++i) {
      const StringPair& pair = store.pair(group->member_pair_indices[i]);
      printf("  \"%s\" -> \"%s\"\n", pair.lhs.c_str(), pair.rhs.c_str());
    }
    printf("\n");
  }
  if (shown == 0) {
    printf("(no multi-member groups at this scale; raise "
           "USTL_BENCH_SCALE)\n");
  }
  return 0;
}

// Pivot-search scan sweep (ISSUE 4): threads x search-cache over the
// incremental grouping drain — the Algorithm 3/4 DFS is the hot path
// (~100 us-100 ms per search vs ~200 ns per posting extend), so this is
// where wall-clock lives. Emits JSON lines in the bench_util style:
//
//   - pivot_scan_drain: full GroupingEngine drain per (threads, cache)
//     configuration, with the engine's search statistics — searches run,
//     searches avoided by the cross-round cache, wave speculation — and a
//     byte_identical flag comparing every configuration's groups against
//     the serial cache-off baseline.
//   - pivot_scan_upfront: GroupAllUpfront wall-clock per thread count
//     (the wave-parallel EarlyTerm driver).
//   - inverted_index_build_auto: serial vs pool-auto index build on the
//     same workload, pinning the small-input fallback (auto sharding must
//     not lose to serial; see kAutoShardMinLabels).
//
// Caveat for the recorded trajectory: on a container with
// hardware_threads == 1 every speedup is ~1x by construction — the
// interesting columns there are searches/cache_hits/speculative (work
// counts), which are hardware-independent for the 1-thread rows.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/timer.h"
#include "graph/graph_builder.h"
#include "grouping/grouping.h"
#include "index/inverted_index.h"
#include "replace/replacement_store.h"

namespace {

using namespace ustl;
using namespace ustl::bench;

std::vector<Group> Drain(const std::vector<StringPair>& pairs,
                         const GroupingOptions& options, double* seconds,
                         IncrementalStats* stats) {
  Timer timer;
  GroupingEngine engine(pairs, options);
  std::vector<Group> groups;
  while (auto group = engine.Next()) groups.push_back(std::move(*group));
  *seconds = timer.ElapsedSeconds();
  *stats = engine.stats();
  return groups;
}

bool SameGroups(const std::vector<Group>& a, const std::vector<Group>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].pivot != b[i].pivot || a[i].structure != b[i].structure ||
        a[i].member_pair_indices != b[i].member_pair_indices) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  PrintEnvironmentJson("pivot_scan");
  printf("=== Pivot scan: threads x search-cache sweep (incremental drain) "
         "===\n\n");
  AddressGenOptions gen;
  gen.scale = BenchScale(0.2);
  gen.seed = BenchSeed() + 3;
  GeneratedDataset data = GenerateAddressDataset(gen);
  ReplacementStore store(data.column, CandidateGenOptions{});
  const std::vector<StringPair>& pairs = store.pairs();
  const unsigned cores = std::thread::hardware_concurrency();

  GroupingOptions baseline_options;
  baseline_options.reuse_search_results = false;
  double baseline_seconds = 0.0;
  IncrementalStats baseline_stats;
  std::vector<Group> baseline =
      Drain(pairs, baseline_options, &baseline_seconds, &baseline_stats);

  for (bool cache : {false, true}) {
    for (int threads : {1, 2, 4}) {
      GroupingOptions options;
      options.num_threads = threads;
      options.reuse_search_results = cache;
      double seconds = 0.0;
      IncrementalStats stats;
      std::vector<Group> groups = Drain(pairs, options, &seconds, &stats);
      printf("{\"bench\": \"pivot_scan_drain\", \"threads\": %d, "
             "\"search_cache\": %s, \"hardware_threads\": %u, "
             "\"pairs\": %zu, \"groups\": %zu, \"seconds\": %.4f, "
             "\"speedup_vs_serial\": %.2f, \"searches\": %llu, "
             "\"cache_hits\": %llu, \"speculative_searches\": %llu, "
             "\"expansions\": %llu, \"byte_identical\": %s}\n",
             threads, cache ? "true" : "false", cores, pairs.size(),
             groups.size(), seconds,
             seconds > 0 ? baseline_seconds / seconds : 0.0,
             static_cast<unsigned long long>(stats.searches),
             static_cast<unsigned long long>(stats.cache_hits),
             static_cast<unsigned long long>(stats.speculative_searches),
             static_cast<unsigned long long>(stats.expansions),
             SameGroups(baseline, groups) ? "true" : "false");
    }
  }

  printf("\n=== Pivot scan: upfront driver thread sweep ===\n\n");
  double upfront_base = 0.0;
  for (int threads : {1, 2, 4}) {
    GroupingOptions options;
    options.num_threads = threads;
    UpfrontStats stats;
    std::vector<Group> groups = GroupAllUpfront(pairs, options, true, &stats);
    if (threads == 1) upfront_base = stats.seconds;
    printf("{\"bench\": \"pivot_scan_upfront\", \"threads\": %d, "
           "\"hardware_threads\": %u, \"pairs\": %zu, \"groups\": %zu, "
           "\"seconds\": %.4f, \"speedup_vs_serial\": %.2f, "
           "\"expansions\": %llu}\n",
           threads, cores, pairs.size(), groups.size(), stats.seconds,
           stats.seconds > 0 ? upfront_base / stats.seconds : 0.0,
           static_cast<unsigned long long>(stats.expansions));
  }

  printf("\n=== Index build: serial vs auto-sharded (small-input fallback) "
         "===\n\n");
  {
    LabelInterner interner;
    GraphBuilder builder(GraphBuilderOptions{}, &interner);
    std::vector<TransformationGraph> graphs;
    for (const StringPair& pair : pairs) {
      Result<TransformationGraph> graph = builder.Build(pair.lhs, pair.rhs);
      if (graph.ok()) graphs.push_back(std::move(graph).value());
    }
    const int kReps = 10;
    const int kRounds = 3;
    ThreadPool pool(4);
    // Interleave the variants and keep each one's best round: the first
    // timed loop otherwise pays allocator warm-up the other never sees.
    double serial_ms = 0.0, auto_ms = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      Timer serial_timer;
      for (int r = 0; r < kReps; ++r) {
        (void)InvertedIndex::Build(graphs, nullptr, 0, interner.size());
      }
      const double s = serial_timer.ElapsedSeconds() * 1000 / kReps;
      if (round == 0 || s < serial_ms) serial_ms = s;
      Timer auto_timer;
      for (int r = 0; r < kReps; ++r) {
        (void)InvertedIndex::Build(graphs, &pool, 0, interner.size());
      }
      const double a = auto_timer.ElapsedSeconds() * 1000 / kReps;
      if (round == 0 || a < auto_ms) auto_ms = a;
    }
    printf("{\"bench\": \"inverted_index_build_auto\", \"graphs\": %zu, "
           "\"labels\": %zu, \"auto_shard_min_labels\": %zu, "
           "\"hardware_threads\": %u, \"serial_ms\": %.3f, "
           "\"auto_ms\": %.3f, \"speedup_vs_serial\": %.2f}\n",
           graphs.size(), interner.size(),
           static_cast<size_t>(kAutoShardMinLabels), cores, serial_ms,
           auto_ms, auto_ms > 0 ? serial_ms / auto_ms : 0.0);
  }

  printf("\nReading: cache_hits are searches the cross-round cache avoided "
         "(exactly zero\nwith the cache off); speculative_searches is wave "
         "work a serial scan would\nskip, which the cache turns into later "
         "hits. Groups are byte-identical across\nevery configuration or "
         "byte_identical flags false. Speedups need multi-core\nhardware; "
         "work counts do not.\n");
  return 0;
}

// Scaling behaviour of the grouping algorithms (Figure 9 companion): how
// the upfront cost of OneShot/EarlyTerm and the first-group latency of
// Incremental grow with the number of candidate replacements. The paper
// reports a single scale per dataset; this sweep shows the trend that
// justifies the incremental algorithm — upfront cost grows superlinearly
// while the top-k latency stays near-flat.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/timer.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

namespace {

// Thread-count sweep over a multi-structure dataset: GroupAllUpfront with
// early termination, whose per-structure-group fan-out is the parallel
// hot path. Emits one JSON line per thread count so the speedup lands in
// the bench trajectory (speedup is relative to the 1-thread run).
void ThreadSweep() {
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Scaling: grouping wall-clock vs num_threads ===\n\n");
  AddressGenOptions gen;
  gen.scale = BenchScale(0.4);
  gen.seed = BenchSeed() + 2;
  GeneratedDataset data = GenerateAddressDataset(gen);
  ReplacementStore store(data.column, CandidateGenOptions{});
  const std::vector<StringPair>& pairs = store.pairs();
  const unsigned cores = std::thread::hardware_concurrency();

  double base_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    GroupingOptions options;
    options.num_threads = threads;
    UpfrontStats stats;
    std::vector<Group> groups = GroupAllUpfront(pairs, options, true, &stats);
    if (threads == 1) base_seconds = stats.seconds;
    printf("{\"bench\": \"grouping_thread_sweep\", \"threads\": %d, "
           "\"hardware_threads\": %u, \"pairs\": %zu, \"groups\": %zu, "
           "\"seconds\": %.4f, \"speedup\": %.2f}\n",
           threads, cores, pairs.size(), groups.size(), stats.seconds,
           stats.seconds > 0 ? base_seconds / stats.seconds : 0.0);
  }
  printf("\nReading: structure groups are disjoint, so grouping time should "
         "shrink with\nthe thread count until the largest single structure "
         "group dominates; on a\nmachine with fewer hardware threads than "
         "the sweep point, the curve flattens\nthere instead of speeding "
         "up.\n\n");
}

}  // namespace

int main() {
  ustl::bench::PrintEnvironmentJson("scaling_runtime");
  ThreadSweep();
  using namespace ustl;
  using namespace ustl::bench;
  printf("=== Scaling: grouping cost vs candidate count (Address analog) "
         "===\n\n");
  TextTable table({"scale", "pairs", "oneshot (s)", "earlyterm (s)",
                   "incr first (s)", "incr 10 (s)"});
  for (double scale : {0.05, 0.1, 0.2, 0.4}) {
    AddressGenOptions gen;
    gen.scale = scale;
    gen.seed = BenchSeed() + 2;
    GeneratedDataset data = GenerateAddressDataset(gen);
    ReplacementStore store(data.column, CandidateGenOptions{});
    const std::vector<StringPair>& pairs = store.pairs();

    UpfrontStats oneshot_stats, earlyterm_stats;
    GroupAllUpfront(pairs, GroupingOptions{}, false, &oneshot_stats);
    GroupAllUpfront(pairs, GroupingOptions{}, true, &earlyterm_stats);

    Timer timer;
    GroupingEngine engine(pairs, GroupingOptions{});
    engine.Next();
    const double first = timer.ElapsedSeconds();
    for (int k = 1; k < 10; ++k) engine.Next();
    const double ten = timer.ElapsedSeconds();

    table.AddRow({Fmt(scale, 2), std::to_string(pairs.size()),
                  Fmt(oneshot_stats.seconds, 3),
                  Fmt(earlyterm_stats.seconds, 3), Fmt(first, 4),
                  Fmt(ten, 4)});
  }
  printf("%s\n", table.Render().c_str());
  printf("Reading: upfront cost grows superlinearly in the candidate "
         "count, while the\nincremental engine's first-group latency "
         "stays roughly 10x below OneShot at\nevery scale here and the "
         "gap widens with size (the paper's Figure 9 reports\n3 orders "
         "of magnitude at its 50k-pair scale).\n");
  return 0;
}

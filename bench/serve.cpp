// Multi-table consolidation service bench (ISSUE 5). A workload of
// concurrent tables — two distinct datasets, one content-duplicate, one
// multi-column replica — streams through a single long-lived
// ConsolidationService for two rounds, at 1 and 4 worker threads. Emits
// one JSON line per (threads, round):
//
//   * tables_per_sec — service throughput over the round;
//   * oracle_calls / oracle_cache_hits — backend work vs. verdicts the
//     service-lifetime broker cache absorbed (round 2 should re-ask
//     nothing);
//   * searches / search_warm_hits — grouping DFS work vs. pivots served
//     by the cross-engine warm cache ("oracle calls saved by warm cache"
//     for the search side); round 2's searches must drop;
//   * byte_identical — every table compared against its serial
//     single-table baseline (the determinism contract).
//
// A second leg measures fairness: one huge table plus three small ones
// admitted together (paused service, so admission is atomic); the
// weighted round-robin must complete every small table before the huge
// one, and `fairness_spread` reports the huge table's completion
// position (tables - 1 = last = perfect).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "pipeline/pipeline.h"
#include "serve/service.h"

namespace {

using namespace ustl;
using namespace ustl::bench;

constexpr size_t kBudget = 60;

Table MakeTable(const GeneratedDataset& data, size_t columns) {
  std::vector<std::string> names;
  for (size_t i = 1; i <= columns; ++i) {
    names.push_back("value" + std::to_string(i));
  }
  Table table(names);
  for (size_t c = 0; c < data.column.size(); ++c) {
    const size_t cluster = table.AddCluster();
    for (const std::string& value : data.column[c]) {
      table.AddRecord(cluster, std::vector<std::string>(columns, value));
    }
  }
  return table;
}

FrameworkOptions BenchFramework() {
  FrameworkOptions framework;
  framework.budget_per_column = kBudget;
  return framework;
}

std::string SerialFingerprint(Table table) {
  ApproveAllOracle oracle;
  PipelineOptions options;
  options.framework = BenchFramework();
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  return FingerprintConsolidation(table, run.golden_records);
}

}  // namespace

int main() {
  PrintEnvironmentJson("serve");
  const double scale = BenchScale(0.08);
  printf("=== Serve: multi-table service, warm caches across rounds "
         "(scale=%.2f) ===\n\n",
         scale);

  AddressGenOptions address_gen;
  address_gen.scale = scale;
  address_gen.seed = BenchSeed() + 3;
  GeneratedDataset address = GenerateAddressDataset(address_gen);
  JournalTitleGenOptions journal_gen;
  journal_gen.scale = scale;
  journal_gen.seed = BenchSeed() + 5;
  GeneratedDataset journal = GenerateJournalTitleDataset(journal_gen);

  // The workload: distinct content, a cross-request duplicate of table 0,
  // and a multi-column replica (cross-column warmth inside one request).
  const std::vector<Table> originals = {
      MakeTable(address, 1), MakeTable(journal, 1), MakeTable(address, 1),
      MakeTable(address, 3)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  const unsigned cores = std::thread::hardware_concurrency();

  for (int threads : {1, 4}) {
    ServiceOptions options;
    options.framework = BenchFramework();
    options.num_threads = threads;
    ApproveAllOracle oracle;
    ConsolidationService service(&oracle, options);
    ServiceStats previous;
    for (int round = 1; round <= 2; ++round) {
      std::vector<Table> tables = originals;
      std::vector<uint64_t> handles(tables.size());
      Timer timer;
      for (size_t t = 0; t < tables.size(); ++t) {
        handles[t] = service.Submit(&tables[t]);
      }
      uint64_t searches = 0;
      uint64_t warm_hits = 0;
      bool byte_identical = true;
      for (size_t t = 0; t < tables.size(); ++t) {
        RequestResult result = service.Wait(handles[t]);
        for (const ColumnRunResult& column : result.per_column) {
          searches += column.grouping.searches;
          warm_hits += column.grouping.warm_hits;
        }
        byte_identical &=
            FingerprintConsolidation(tables[t], result.golden_records) ==
            baselines[t];
      }
      const double seconds = timer.ElapsedSeconds();
      const ServiceStats now = service.stats();
      printf("{\"bench\": \"serve\", \"threads\": %d, \"round\": %d, "
             "\"tables\": %zu, \"hardware_threads\": %u, "
             "\"seconds\": %.4f, \"tables_per_sec\": %.2f, "
             "\"questions\": %zu, \"oracle_calls\": %zu, "
             "\"oracle_cache_hits\": %zu, \"searches\": %llu, "
             "\"search_warm_hits\": %llu, \"byte_identical\": %s}\n",
             threads, round, tables.size(), cores, seconds,
             seconds > 0 ? static_cast<double>(tables.size()) / seconds
                         : 0.0,
             now.oracle.questions - previous.oracle.questions,
             now.oracle.backend_calls - previous.oracle.backend_calls,
             now.oracle.cache_hits - previous.oracle.cache_hits,
             static_cast<unsigned long long>(searches),
             static_cast<unsigned long long>(warm_hits),
             byte_identical ? "true" : "false");
      previous = now;
    }
  }

  // Fairness: a huge table and three small ones admitted atomically; the
  // weighted round-robin must let every small table overtake the big one.
  {
    AddressGenOptions small_gen;
    small_gen.scale = scale * 0.25;
    small_gen.seed = BenchSeed() + 7;
    GeneratedDataset small_data = GenerateAddressDataset(small_gen);
    std::vector<Table> tables;
    tables.push_back(MakeTable(address, 4));  // the huge one, admitted first
    for (int i = 0; i < 3; ++i) tables.push_back(MakeTable(small_data, 1));

    ServiceOptions options;
    options.framework = BenchFramework();
    options.num_threads = 2;
    options.start_paused = true;
    ApproveAllOracle oracle;
    ConsolidationService service(&oracle, options);
    std::vector<uint64_t> handles;
    for (Table& table : tables) handles.push_back(service.Submit(&table));
    Timer timer;
    service.Resume();
    for (uint64_t handle : handles) service.Wait(handle);
    const double seconds = timer.ElapsedSeconds();

    const std::vector<uint64_t> order = service.CompletionOrder();
    size_t huge_position = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == handles[0]) huge_position = i;
    }
    printf("{\"bench\": \"serve_fairness\", \"threads\": 2, \"tables\": %zu, "
           "\"seconds\": %.4f, \"huge_completion_position\": %zu, "
           "\"fairness_spread\": %zu, \"small_before_large\": %s}\n",
           tables.size(), seconds, huge_position, order.size() - 1,
           huge_position == order.size() - 1 ? "true" : "false");
  }

  printf("\nReading: byte_identical must be true everywhere — serving "
         "never changes\na table's output. Round 2 should show "
         "oracle_calls: 0 (the broker cache\nholds every verdict) and "
         "fewer searches with search_warm_hits > 0 (the\ncross-engine "
         "cache already knows round 1's pivots). small_before_large:\n"
         "true is the fairness guarantee; speedup additionally needs "
         "hardware_threads > 1.\n");
  return 0;
}

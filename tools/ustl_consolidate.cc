// End-to-end consolidation CLI (Algorithm 1 as a command-line tool).
//
//   ustl-consolidate --input clustered.csv --cluster-col cluster \
//                    --output standardized.csv \
//                    [--budget N] [--approve all|interactive] \
//                    [--log transforms.txt] [--golden golden.csv]
//
// Reads entity-resolution output (a CSV with a cluster-key column),
// standardizes every attribute column with the grouping pipeline, asking
// the chosen oracle to confirm each replacement group largest-first, and
// writes the standardized table back. With --golden it also runs majority
// consensus and writes one golden record per cluster. With --log the
// approved transformation programs are persisted in the parseable
// dsl/parser.h syntax.
//
// --approve interactive shows up to five sample pairs per group and reads
// y/n/q plus a direction from stdin — the paper's human expert, live.
// --approve all applies every group lhs -> rhs without asking (useful for
// demos and smoke tests; real use should keep a human in the loop).
#include <cstdio>
#include <cstring>
#include <string>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "consolidate/replay.h"
#include "consolidate/truth_discovery.h"
#include "io/csv.h"
#include "pipeline/pipeline.h"

namespace {

using namespace ustl;

struct Args {
  std::string input;
  std::string cluster_col = "cluster";
  std::string output;
  std::string golden;
  std::string log;
  std::string replay;
  std::string approve = "interactive";
  std::string oracle_cache = "on";
  std::string search_cache = "on";
  std::string index_codec = "raw";
  size_t budget = 100;
  int threads = 1;
  bool column_parallel = false;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: ustl-consolidate --input FILE --output FILE\n"
      "                        [--cluster-col NAME (default: cluster)]\n"
      "                        [--budget N (default: 100)]\n"
      "                        [--approve all|interactive (default: "
      "interactive)]\n"
      "                        [--log FILE] [--golden FILE]\n"
      "                        [--replay FILE]\n"
      "                        [--threads N (default: 1; 0 = all cores)]\n"
      "                        [--column-parallel]\n"
      "                        [--oracle-cache on|off (default: on)]\n"
      "                        [--search-cache on|off (default: on)]\n"
      "                        [--index-codec raw|block (default: raw)]\n"
      "\n"
      "--threads parallelizes grouping (graph construction, structure-"
      "group\npreprocessing, and the pivot searches within one structure "
      "group);\nresults are identical for any thread count.\n"
      "--column-parallel standardizes all columns concurrently on the "
      "thread\nbudget (pipeline subsystem); output stays byte-identical. "
      "Requires\n--approve all (a human can't answer interleaved "
      "prompts).\n"
      "--oracle-cache dedups repeated questions across columns by "
      "content;\nverdicts are unchanged, the oracle is just asked "
      "less.\n"
      "--search-cache reuses still-exact pivot-search results across "
      "grouping\nrounds and warm-starts identical-content columns from "
      "each other;\ngroups are byte-identical either way, off only "
      "repeats searches.\n"
      "--index-codec block stores each structure group's posting lists "
      "as\ndelta-compressed, skippable blocks (less memory, prunable "
      "joins);\noutput is byte-identical to raw.\n"
      "--replay applies a previously saved transformation log (--log "
      "output)\ninstead of running verification; no questions are "
      "asked.\n");
}

// The interactive oracle: prints sample pairs, reads y/n/q and an optional
// direction ('<' replaces rhs by lhs; default replaces lhs by rhs).
class InteractiveOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    // After 'q' the column still drains its remaining groups (the
    // framework checks no quit flag); answer them silently as rejections
    // instead of re-prompting a user who already asked to stop.
    if (quit_) return Verdict{};
    std::printf("\ngroup of %zu replacement(s):\n", group_pairs.size());
    const size_t show = group_pairs.size() < 5 ? group_pairs.size() : 5;
    for (size_t i = 0; i < show; ++i) {
      std::printf("  \"%s\"  ->  \"%s\"\n", group_pairs[i].lhs.c_str(),
                  group_pairs[i].rhs.c_str());
    }
    if (show < group_pairs.size()) {
      std::printf("  ... and %zu more\n", group_pairs.size() - show);
    }
    std::printf("approve? [y = replace left by right, < = replace right by "
                "left, n = reject, q = stop]: ");
    std::fflush(stdout);
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr) {
      quit_ = true;
      return Verdict{};
    }
    const char answer = buffer[0];
    if (answer == 'q' || answer == 'Q') {
      quit_ = true;
      return Verdict{};
    }
    Verdict verdict;
    if (answer == 'y' || answer == 'Y') {
      verdict.approved = true;
      verdict.direction = ReplaceDirection::kLhsToRhs;
    } else if (answer == '<') {
      verdict.approved = true;
      verdict.direction = ReplaceDirection::kRhsToLhs;
    }
    return verdict;
  }

  bool quit() const { return quit_; }

 private:
  bool quit_ = false;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--input") == 0) {
      args.input = next("--input");
    } else if (std::strcmp(argv[i], "--cluster-col") == 0) {
      args.cluster_col = next("--cluster-col");
    } else if (std::strcmp(argv[i], "--output") == 0) {
      args.output = next("--output");
    } else if (std::strcmp(argv[i], "--golden") == 0) {
      args.golden = next("--golden");
    } else if (std::strcmp(argv[i], "--log") == 0) {
      args.log = next("--log");
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      args.replay = next("--replay");
    } else if (std::strcmp(argv[i], "--approve") == 0) {
      args.approve = next("--approve");
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      args.budget = std::strtoull(next("--budget"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      args.threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--column-parallel") == 0) {
      args.column_parallel = true;
    } else if (std::strcmp(argv[i], "--oracle-cache") == 0) {
      args.oracle_cache = next("--oracle-cache");
    } else if (std::strcmp(argv[i], "--search-cache") == 0) {
      args.search_cache = next("--search-cache");
    } else if (std::strcmp(argv[i], "--index-codec") == 0) {
      args.index_codec = next("--index-codec");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  if (args.input.empty() || args.output.empty() ||
      (args.approve != "all" && args.approve != "interactive") ||
      (args.oracle_cache != "on" && args.oracle_cache != "off") ||
      (args.search_cache != "on" && args.search_cache != "off") ||
      (args.index_codec != "raw" && args.index_codec != "block")) {
    Usage();
    return 2;
  }
  if (args.column_parallel && args.approve == "interactive") {
    std::fprintf(stderr,
                 "--column-parallel needs --approve all; interactive "
                 "prompts from\nconcurrent columns would interleave. "
                 "Running columns serially.\n");
    args.column_parallel = false;
  }

  Result<std::string> content = ReadFileToString(args.input);
  if (!content.ok()) return Fail(content.status());
  Result<ClusteredCsv> clustered =
      ReadClusteredCsv(*content, args.cluster_col);
  if (!clustered.ok()) return Fail(clustered.status());
  Table& table = clustered->table;
  std::printf("read %zu clusters x %zu columns from %s\n",
              table.num_clusters(), table.num_columns(),
              args.input.c_str());

  FrameworkOptions options;
  options.budget_per_column = args.budget;
  options.skip_singletons = args.approve == "interactive";
  options.grouping.num_threads = args.threads;
  options.grouping.reuse_search_results = args.search_cache == "on";
  options.grouping.index_codec = args.index_codec == "block"
                                     ? IndexCodec::kBlock
                                     : IndexCodec::kRaw;

  ApproveAllOracle approve_all;
  InteractiveOracle interactive;
  std::vector<ApprovedTransformation> approved;
  size_t total_edits = 0;
  if (!args.replay.empty()) {
    Result<std::string> log_content = ReadFileToString(args.replay);
    if (!log_content.ok()) return Fail(log_content.status());
    Result<std::vector<ApprovedTransformation>> transformations =
        ParseTransformationLog(*log_content);
    if (!transformations.ok()) return Fail(transformations.status());
    total_edits = ReplayTransformations(&table, *transformations);
    std::printf("replayed %zu transformation(s)\n",
                transformations->size());
  } else if (args.approve == "all") {
    // Batch path: the pipeline subsystem fans columns out over the thread
    // budget (when asked) and brokers every question — cache, batching
    // and the replay log come from one place.
    PipelineOptions pipeline;
    pipeline.framework = options;
    pipeline.column_parallel = args.column_parallel;
    pipeline.num_threads = args.threads;
    pipeline.broker.cache_verdicts = args.oracle_cache == "on";
    pipeline.warm_search_cache = args.search_cache == "on";
    PipelineRun run = RunConsolidationPipeline(&table, &approve_all,
                                               pipeline);
    for (size_t col = 0; col < table.num_columns(); ++col) {
      const ColumnRunResult& result = run.per_column[col];
      total_edits += result.edits;
      std::printf("column '%s': presented %zu group(s), approved %zu, "
                  "%zu cell edit(s)\n",
                  table.column_names()[col].c_str(),
                  result.groups_presented, result.groups_approved,
                  result.edits);
    }
    std::printf("oracle: %zu question(s), %zu reached the oracle, %zu "
                "cache hit(s), largest batch %zu\n",
                run.oracle_stats.questions, run.oracle_stats.backend_calls,
                run.oracle_stats.cache_hits, run.oracle_stats.max_batch);
    approved = std::move(run.approved_log);
  } else {
    // Interactive columns stay serial, but still go through a broker: the
    // human never answers the same question twice when the cache is on.
    OracleBroker::Options broker_options;
    broker_options.cache_verdicts = args.oracle_cache == "on";
    OracleBroker broker(&interactive, broker_options);
    for (size_t col = 0; col < table.num_columns(); ++col) {
      std::printf("=== column '%s' ===\n",
                  table.column_names()[col].c_str());
      options.column_name = table.column_names()[col];
      Column column = table.ExtractColumn(col);
      ColumnRunResult result = StandardizeColumn(&column, &broker, options);
      table.StoreColumn(col, column);
      total_edits += result.edits;
      std::printf("presented %zu group(s), approved %zu, %zu cell "
                  "edit(s)\n",
                  result.groups_presented, result.groups_approved,
                  result.edits);
      if (interactive.quit()) break;
    }
    approved = broker.ApprovedLog();
  }

  Status status = WriteStringToFile(args.output,
                                    WriteClusteredCsv(*clustered));
  if (!status.ok()) return Fail(status);
  std::printf("wrote standardized table (%zu edits) to %s\n", total_edits,
              args.output.c_str());

  if (!args.log.empty()) {
    status = WriteStringToFile(args.log, SerializeTransformationLog(approved));
    if (!status.ok()) return Fail(status);
    std::printf("wrote transformation log to %s\n", args.log.c_str());
  }

  if (!args.golden.empty()) {
    std::vector<GoldenRecord> golden = MajorityConsensus(table);
    status = WriteStringToFile(args.golden, WriteGoldenCsv(*clustered, golden));
    if (!status.ok()) return Fail(status);
    std::printf("wrote %zu golden records to %s\n", golden.size(),
                args.golden.c_str());
  }
  return 0;
}

#!/usr/bin/env sh
# Tier-1 verify plus the Debug-config leg. The default build is Release
# (-O2, NDEBUG): exactly the line ROADMAP.md documents. The second pass
# builds with CMAKE_BUILD_TYPE=Debug (NDEBUG unset, -O2 still applied via
# the global flags), which is the only configuration where the
# USTL_DCHECK invariant scans run — CI exercises both, so run both
# locally before sending a PR. Set USTL_CHECK_SKIP_DEBUG=1 to run only
# the tier-1 Release pass.
#
# A third leg builds the parallel subsystems under ThreadSanitizer
# (-DUSTL_TSAN=ON) and runs parallel_test / grouping_test /
# pipeline_test — the wave scans and the thread pool are only honest if
# an instrumented run agrees. Set USTL_CHECK_SKIP_TSAN=1 to skip it.
set -eu
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

# Column-parallel byte-compare smoke: a 3-column replicated table must
# standardize to byte-identical CSVs for the serial run, the
# column-parallel run and the cache-off run (the pipeline determinism
# contract, ISSUE 3 acceptance).
./build/ustl-generate --dataset address --scale 0.05 --columns 3 \
  --out build/smoke_columns.csv
./build/ustl-consolidate --input build/smoke_columns.csv \
  --output build/smoke_serial.csv --approve all --budget 40
./build/ustl-consolidate --input build/smoke_columns.csv \
  --output build/smoke_parallel.csv --approve all --budget 40 \
  --column-parallel --threads 4
./build/ustl-consolidate --input build/smoke_columns.csv \
  --output build/smoke_nocache.csv --approve all --budget 40 \
  --oracle-cache off
cmp build/smoke_serial.csv build/smoke_parallel.csv
cmp build/smoke_serial.csv build/smoke_nocache.csv
echo "column-parallel smoke: byte-identical"

# Wave-scan / search-cache byte-compare (ISSUE 4 acceptance): grouped
# output — and therefore the standardized table — must be byte-identical
# across --threads {1,4} x --search-cache {on,off}. The serial cache-on
# run is the smoke_serial.csv baseline above.
for config in "--threads 4" "--search-cache off" \
              "--threads 4 --search-cache off"; do
  # shellcheck disable=SC2086
  ./build/ustl-consolidate --input build/smoke_columns.csv \
    --output build/smoke_wave.csv --approve all --budget 40 $config
  cmp build/smoke_serial.csv build/smoke_wave.csv
done
echo "wave-scan/search-cache smoke: byte-identical"

if [ "${USTL_CHECK_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DUSTL_TSAN=ON
  cmake --build build-tsan -j"$JOBS" --target parallel_test grouping_test \
    pipeline_test
  (cd build-tsan && ctest --output-on-failure \
    -R "parallel_test|grouping_test|pipeline_test")
fi

if [ "${USTL_CHECK_SKIP_DEBUG:-0}" != "1" ]; then
  cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-debug -j"$JOBS"
  (cd build-debug && ctest --output-on-failure -j"$JOBS")
fi

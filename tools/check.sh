#!/usr/bin/env sh
# Tier-1 verify: full configure + build + ctest, exactly the line
# ROADMAP.md documents. CI runs this on every push; run it locally before
# sending a PR.
set -eu
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j"$(nproc 2>/dev/null || echo 2)"
cd build && ctest --output-on-failure -j"$(nproc 2>/dev/null || echo 2)"

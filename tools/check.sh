#!/usr/bin/env sh
# Tier-1 verify plus the Debug-config leg. The default build is Release
# (-O2, NDEBUG): exactly the line ROADMAP.md documents. The second pass
# builds with CMAKE_BUILD_TYPE=Debug (NDEBUG unset, -O2 still applied via
# the global flags), which is the only configuration where the
# USTL_DCHECK invariant scans run — CI exercises both, so run both
# locally before sending a PR. Set USTL_CHECK_SKIP_DEBUG=1 to run only
# the tier-1 Release pass.
#
# A third leg builds the parallel subsystems under ThreadSanitizer
# (-DUSTL_TSAN=ON) and runs parallel_test / grouping_test /
# pipeline_test / serve_test / robustness_test / obs_test / persist_test
# — the wave scans, the thread pool, the service, the retry/cancel
# machinery and the WAL/snapshot layer are only honest if an
# instrumented run agrees. Set USTL_CHECK_SKIP_TSAN=1 to skip it.
set -eu
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

# Column-parallel byte-compare smoke: a 3-column replicated table must
# standardize to byte-identical CSVs for the serial run, the
# column-parallel run and the cache-off run (the pipeline determinism
# contract, ISSUE 3 acceptance).
./build/ustl-generate --dataset address --scale 0.05 --columns 3 \
  --out build/smoke_columns.csv
./build/ustl-consolidate --input build/smoke_columns.csv \
  --output build/smoke_serial.csv --approve all --budget 40
./build/ustl-consolidate --input build/smoke_columns.csv \
  --output build/smoke_parallel.csv --approve all --budget 40 \
  --column-parallel --threads 4
./build/ustl-consolidate --input build/smoke_columns.csv \
  --output build/smoke_nocache.csv --approve all --budget 40 \
  --oracle-cache off
cmp build/smoke_serial.csv build/smoke_parallel.csv
cmp build/smoke_serial.csv build/smoke_nocache.csv
echo "column-parallel smoke: byte-identical"

# Wave-scan / search-cache / index-codec byte-compare (ISSUE 4 + ISSUE 6
# acceptance): grouped output — and therefore the standardized table —
# must be byte-identical across --threads {1,4} x --search-cache {on,off}
# x --index-codec {raw,block}. The serial cache-on raw run is the
# smoke_serial.csv baseline above.
for config in "--threads 4" "--search-cache off" \
              "--threads 4 --search-cache off" \
              "--index-codec block" \
              "--index-codec block --threads 4" \
              "--index-codec block --search-cache off" \
              "--index-codec block --threads 4 --search-cache off"; do
  # shellcheck disable=SC2086
  ./build/ustl-consolidate --input build/smoke_columns.csv \
    --output build/smoke_wave.csv --approve all --budget 40 $config
  cmp build/smoke_serial.csv build/smoke_wave.csv
done
echo "wave-scan/search-cache/index-codec smoke: byte-identical"

# Multi-table serving byte-compare (ISSUE 5 acceptance): three concurrent
# tables through one long-lived ustl-serve service must match a serial
# per-table ustl-consolidate run byte for byte, across --threads {1,4} x
# two admission orders x warm/cold cache (--repeat 2: round 2 runs
# against the round-1-warmed verdict + search caches).
./build/ustl-generate --dataset address --scale 0.05 --seed 21 \
  --out build/serve_a.csv
./build/ustl-generate --dataset journaltitle --scale 0.05 --seed 22 \
  --out build/serve_b.csv
./build/ustl-generate --dataset address --scale 0.03 --seed 23 --columns 2 \
  --out build/serve_c.csv
for t in a b c; do
  ./build/ustl-consolidate --input build/serve_$t.csv \
    --output build/serve_$t.base.csv --approve all --budget 40
done
printf '%s\n' \
  "id=a input=build/serve_a.csv output=build/serve_a.out.csv budget=40" \
  "id=b input=build/serve_b.csv output=build/serve_b.out.csv budget=40" \
  "id=c input=build/serve_c.csv output=build/serve_c.out.csv budget=40" \
  > build/serve_fwd.txt
printf '%s\n' \
  "id=c input=build/serve_c.csv output=build/serve_c.out.csv budget=40" \
  "id=b input=build/serve_b.csv output=build/serve_b.out.csv budget=40" \
  "id=a input=build/serve_a.csv output=build/serve_a.out.csv budget=40" \
  > build/serve_rev.txt
for threads in 1 4; do
  for manifest in serve_fwd serve_rev; do
    ./build/ustl-serve --manifest build/$manifest.txt --threads "$threads" \
      --repeat 2
    for t in a b c; do
      cmp build/serve_$t.base.csv build/serve_$t.out.csv
      cmp build/serve_$t.base.csv build/serve_$t.out.csv.r2
    done
  done
done
echo "multi-table serve smoke: byte-identical"

# One block-codec serve pass: the compressed index must not perturb the
# long-lived service either (same goldens, warm and cold rounds).
./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 --repeat 2 \
  --index-codec block
for t in a b c; do
  cmp build/serve_$t.base.csv build/serve_$t.out.csv
  cmp build/serve_$t.base.csv build/serve_$t.out.csv.r2
done
echo "block-codec serve smoke: byte-identical"

# Fault-sweep byte-compare (ISSUE 7 acceptance): the same three tables
# under an eventually-successful fault plan (every faulty backend call
# recovers within the retry budget) must still match the clean serial
# baselines byte for byte — retries may cost time, never bytes. A second
# sweep with injected latency plus a far-future deadline checks the
# deadline plumbing is inert when it does not fire.
for threads in 1 4; do
  ./build/ustl-serve --manifest build/serve_fwd.txt --threads "$threads" \
    --fault-plan "rate=0.6,fails=2,seed=9" --retry-attempts 4
  for t in a b c; do
    cmp build/serve_$t.base.csv build/serve_$t.out.csv
  done
done
./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 \
  --fault-plan "rate=0.5,fails=1,slow=0.3,slow_ms=2,seed=11" \
  --deadline-ms 600000
for t in a b c; do
  cmp build/serve_$t.base.csv build/serve_$t.out.csv
done
echo "fault-sweep serve smoke: byte-identical"

# Observability byte-compare (ISSUE 8 acceptance): the same manifest with
# --trace-out and --metrics-out armed must still match the serial
# baselines byte for byte across threads {1,4} x codec {raw,block} —
# tracing records, never perturbs — and every emitted span stream must
# pass the structural validator (id ordering, interval containment, one
# root per request).
for threads in 1 4; do
  for codec in raw block; do
    ./build/ustl-serve --manifest build/serve_fwd.txt --threads "$threads" \
      --index-codec "$codec" \
      --trace-out "build/serve_trace_${threads}_${codec}.jsonl" \
      --metrics-out build/serve_metrics.prom
    for t in a b c; do
      cmp build/serve_$t.base.csv build/serve_$t.out.csv
    done
    python3 tools/check_trace.py \
      "build/serve_trace_${threads}_${codec}.jsonl" --min-requests 3
  done
done
grep -q "ustl_requests_completed_total" build/serve_metrics.prom
echo "observability serve smoke: byte-identical + traces valid"

# Deep-observability sweep (ISSUE 10 acceptance): the full diagnosis kit
# armed — CPU-attributed profiling (--profile-out), deterministic 1-in-N
# trace sampling (--trace-sample) and the always-on flight recorder with
# a stall watchdog — must still match the serial baselines byte for byte
# across threads {1,4} x codec {raw,block}. Each profile dump must pass
# the conservation validator together with its collapsed-stack twin, the
# sampled stream must stay structurally valid, and a clean run must dump
# nothing (the recorder speaks only when something goes wrong).
for threads in 1 4; do
  for codec in raw block; do
    : > build/serve_flight_clean.jsonl
    ./build/ustl-serve --manifest build/serve_fwd.txt --threads "$threads" \
      --index-codec "$codec" \
      --profile-out "build/serve_profile_${threads}_${codec}.json" \
      --trace-out "build/serve_sampled_${threads}_${codec}.jsonl" \
      --trace-sample 2 \
      --flight-dump build/serve_flight_clean.jsonl \
      --stall-threshold-ms 60000
    for t in a b c; do
      cmp build/serve_$t.base.csv build/serve_$t.out.csv
    done
    python3 tools/check_trace.py \
      "build/serve_sampled_${threads}_${codec}.jsonl" --min-requests 1
    python3 tools/check_trace.py \
      --profile "build/serve_profile_${threads}_${codec}.json" \
      --folded "build/serve_profile_${threads}_${codec}.json.folded"
    if [ -s build/serve_flight_clean.jsonl ]; then
      echo "flight recorder dumped on a clean run"
      exit 1
    fi
  done
done
# A forced deadline-exceeded request (every backend call slowed past a
# 1 ms deadline) must leave schema-valid flight-recorder dumps with the
# expected reason — post-hoc evidence with zero pre-arming. The service
# drains cleanly (exit 0): a blown per-request deadline is a request
# outcome, not a process failure.
./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 \
  --deadline-ms 1 --fault-plan "slow=1.0,slow_ms=25,rate=0" \
  --flight-dump build/serve_flight_deadline.jsonl
python3 tools/check_trace.py --flight build/serve_flight_deadline.jsonl \
  --min-dumps 1 --reason deadline_exceeded
echo "deep-observability smoke: byte-identical + profile/flight valid"

# Crash-recovery byte-compare (ISSUE 9 acceptance): a persisted run must
# match the serial baselines, a warm restart over the same directory must
# recover a nonzero record count and still match, and a SIGKILL planted
# mid-WAL-append (whole frame and torn mid-frame) must leave a directory
# a restart recovers from — same bytes, no repair step. Recovery may
# only ever skip oracle calls, never change output.
rm -rf build/persist_smoke
./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 \
  --persist-dir build/persist_smoke --fsync batch
for t in a b c; do
  cmp build/serve_$t.base.csv build/serve_$t.out.csv
done
./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 \
  --persist-dir build/persist_smoke --fsync batch \
  --metrics-out build/persist_metrics.prom
for t in a b c; do
  cmp build/serve_$t.base.csv build/serve_$t.out.csv
done
awk '$1 == "ustl_persist_recovered_records" && $2 + 0 > 0 { found = 1 }
     END { exit !found }' build/persist_metrics.prom
for crash_point in wal_append:5 wal_mid_record:9; do
  rm -rf build/persist_smoke
  if ./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 \
      --persist-dir build/persist_smoke --fsync always \
      --crash-point "$crash_point"; then
    echo "crash point $crash_point never fired"
    exit 1
  fi
  ./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 \
    --persist-dir build/persist_smoke --fsync batch \
    --metrics-out build/persist_metrics.prom
  for t in a b c; do
    cmp build/serve_$t.base.csv build/serve_$t.out.csv
  done
  awk '$1 == "ustl_persist_recovered_records" && $2 + 0 > 0 { found = 1 }
       END { exit !found }' build/persist_metrics.prom
done
echo "crash-recovery serve smoke: kill-tested, byte-identical"

# Graceful drain (ISSUE 9 acceptance): SIGTERM mid-workload must exit 0
# after finishing in-flight requests, and still flush the final metrics
# scrape and snapshot. || true on the kill: if the workload finished
# first the process is gone, and a clean normal exit is also acceptable.
rm -rf build/persist_smoke
./build/ustl-serve --manifest build/serve_fwd.txt --threads 4 --repeat 8 \
  --persist-dir build/persist_smoke --fsync batch \
  --metrics-out build/drain_metrics.prom &
serve_pid=$!
sleep 1
kill -TERM "$serve_pid" 2>/dev/null || true
if wait "$serve_pid"; then :; else
  echo "graceful drain exited nonzero"
  exit 1
fi
grep -q "ustl_requests_completed_total" build/drain_metrics.prom
test -f build/persist_smoke/snapshot.bin
echo "graceful drain smoke: clean exit + final snapshot"

# Perf-regression gate (ISSUE 6 + 7 + 10 acceptance): rerun the
# self-checking micro-kernel suite plus the robustness legs and gate
# their hardware-independent metrics (speedup_vs_seed, compression_ratio,
# zero allocs, nonzero skip/prune counters, retries recovered with
# byte-identical output, breaker trips, bounded cancel latency, <=2%
# zero-fault overhead, <=2% full-diagnosis observability overhead with
# ring insertion and folding engaged) against the recorded BENCH_*
# trajectory.
# Set USTL_CHECK_SKIP_BENCH=1 to skip (e.g. on heavily loaded boxes).
if [ "${USTL_CHECK_SKIP_BENCH:-0}" != "1" ]; then
  ./build/bench_micro_kernels > build/bench_fresh.json
  ./build/bench_robustness_serve >> build/bench_fresh.json
  python3 tools/check_bench.py --fresh build/bench_fresh.json
fi

if [ "${USTL_CHECK_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DUSTL_TSAN=ON
  cmake --build build-tsan -j"$JOBS" --target parallel_test grouping_test \
    pipeline_test serve_test robustness_test obs_test persist_test
  (cd build-tsan && ctest --output-on-failure \
    -R "parallel_test|grouping_test|pipeline_test|serve_test|robustness_test|obs_test|persist_test")
fi

if [ "${USTL_CHECK_SKIP_DEBUG:-0}" != "1" ]; then
  cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-debug -j"$JOBS"
  (cd build-debug && ctest --output-on-failure -j"$JOBS")
fi

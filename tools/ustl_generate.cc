// Dataset generator CLI: writes one of the three synthetic dataset analogs
// (DESIGN.md, Table 6) as a clustered CSV that ustl-consolidate can ingest.
//
//   ustl-generate --dataset address --scale 0.3 --out address.csv
//
// The CSV has two columns: `cluster` (the entity key, e.g. the EIN/ISBN/
// ISSN analog) and `value` (the attribute the paper standardizes).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/parallel.h"
#include "datagen/generators.h"
#include "io/csv.h"

namespace {

using namespace ustl;

struct Args {
  std::string dataset = "address";
  double scale = 0.3;
  uint64_t seed = 17;
  std::string out;
  int threads = 1;
  size_t columns = 1;
};

void Usage() {
  std::fprintf(stderr,
               "usage: ustl-generate [--dataset address|authorlist|"
               "journaltitle]\n"
               "                     [--scale S] [--seed N]\n"
               "                     [--columns N (default: 1)]\n"
               "                     [--threads N (default: 1; 0 = all "
               "cores)] --out FILE\n"
               "\n"
               "--columns N replicates the generated attribute into N "
               "columns\n(value1..valueN), producing a multi-column table "
               "whose columns pose\nidentical verification questions — "
               "the workload that exercises the\nconsolidation pipeline's "
               "column scheduler and oracle cache.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      args.dataset = next("--dataset");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = std::atof(next("--scale"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out = next("--out");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      args.threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--columns") == 0) {
      args.columns = std::strtoull(next("--columns"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  // The upper bound also catches negative inputs wrapped by strtoull.
  if (args.out.empty() || args.scale <= 0 || args.columns == 0 ||
      args.columns > 1024) {
    std::fprintf(stderr, "--columns must be in [1, 1024]\n");
    Usage();
    return 2;
  }

  GeneratedDataset data;
  if (args.dataset == "address") {
    AddressGenOptions options;
    options.scale = args.scale;
    options.seed = args.seed;
    data = GenerateAddressDataset(options);
  } else if (args.dataset == "authorlist") {
    AuthorListGenOptions options;
    options.scale = args.scale;
    options.seed = args.seed;
    data = GenerateAuthorListDataset(options);
  } else if (args.dataset == "journaltitle") {
    JournalTitleGenOptions options;
    options.scale = args.scale;
    options.seed = args.seed;
    data = GenerateJournalTitleDataset(options);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    Usage();
    return 2;
  }

  ClusteredCsv csv;
  csv.cluster_column = "cluster";
  std::vector<std::string> column_names;
  if (args.columns == 1) {
    column_names.push_back("value");
  } else {
    for (size_t i = 1; i <= args.columns; ++i) {
      column_names.push_back("value" + std::to_string(i));
    }
  }
  csv.table = Table(column_names);
  for (size_t c = 0; c < data.column.size(); ++c) {
    size_t cluster = csv.table.AddCluster();
    csv.cluster_keys.push_back("c" + std::to_string(c));
    for (const std::string& value : data.column[c]) {
      csv.table.AddRecord(cluster,
                          std::vector<std::string>(args.columns, value));
    }
  }
  std::unique_ptr<ThreadPool> pool;
  if (ResolveThreadCount(args.threads) > 1) {
    pool = std::make_unique<ThreadPool>(ResolveThreadCount(args.threads));
  }
  Status status =
      WriteStringToFile(args.out, WriteClusteredCsv(csv, pool.get()));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records in %zu clusters to %s\n",
              data.num_records(), data.num_clusters(), args.out.c_str());
  return 0;
}

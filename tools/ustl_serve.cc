// Multi-table consolidation server driver (serve/service.h as a CLI).
//
//   ustl-serve --manifest workload.txt [--threads N] [--repeat R]
//              [--oracle-cache on|off] [--search-cache on|off]
//              [--max-cache-entries N] [--budget N] [--events]
//
// The manifest describes a workload: one table per line, admitted in file
// order and standardized concurrently by one long-lived
// ConsolidationService (shared thread pool, shared verdict cache, shared
// cross-engine search cache). Lines are whitespace-separated key=value
// fields; '#' starts a comment:
//
//   # id defaults to the input path, budget to --budget,
//   # cluster-col to "cluster".
//   id=addresses input=a.csv output=a.out.csv golden=a.golden.csv budget=40
//   id=journals  input=b.csv output=b.out.csv
//
// Every group is auto-approved (the ApproveAllOracle — interleaved
// interactive prompts from concurrent tables would be meaningless), so
// per-table output is byte-identical to `ustl-consolidate --approve all`
// on the same input for ANY --threads value, admission order and cache
// state: the determinism contract the service inherits from the
// pipeline.
//
// --repeat R replays the whole workload R times through the SAME service
// (fresh table copies each round; round r >= 2 outputs get an ".rR"
// suffix). Later rounds run against warm verdict/search caches — the
// summary lines show the oracle calls and pivot searches the warmth
// saved. --events streams one JSON line per service event; events of
// concurrent tables interleave in scheduling order (per-table order is
// deterministic).
//
// Observability (obs/): --metrics-out FILE scrapes the service's metrics
// registry into FILE — Prometheus text exposition, or a JSON snapshot
// when FILE ends in ".json" — once at exit and, with
// --metrics-interval-ms N, periodically while serving (each scrape
// rewrites the file atomically enough for a tailing reader: full
// snapshot, single write). --trace-out FILE appends one JSON line per
// trace span for every request (span schema in obs/trace.h). Both are
// write-only taps: output CSVs stay byte-identical with them on or off.
// Durability (persist/): --persist-dir DIR makes the service's warm
// state (verdict cache + approved log) crash-safe — WAL-logged as it
// grows, snapshotted at shutdown, recovered on the next start, so a
// restarted server skips the oracle calls it already paid for while
// producing byte-identical outputs. --fsync picks the WAL durability
// policy. SIGTERM/SIGINT trigger a graceful drain: in-flight tables
// finish and are written, new submits are rejected with a typed
// shutting_down status, the final snapshot and metrics scrape land
// atomically, and the process exits 0. --crash-point kind:N arms a
// kill-test failpoint (see persist/crash_point.h) that SIGKILLs the
// process at an exact WAL/snapshot write boundary — the crash-recovery
// CI leg uses it to prove recovery.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "consolidate/oracle.h"
#include "io/csv.h"
#include "obs/trace.h"
#include "persist/crash_point.h"
#include "persist/snapshot.h"
#include "pipeline/fault_oracle.h"
#include "serve/service.h"

namespace {

using namespace ustl;

struct ManifestEntry {
  std::string id;
  std::string input;
  std::string output;
  std::string golden;
  std::string cluster_col = "cluster";
  size_t budget = 0;  // 0 = the --budget default
};

struct Args {
  std::string manifest;
  int threads = 1;
  size_t budget = 100;
  size_t repeat = 1;
  size_t max_cache_entries = 0;
  std::string oracle_cache = "on";
  std::string search_cache = "on";
  std::string index_codec = "raw";
  bool events = false;
  int64_t deadline_ms = 0;    // per-request deadline; 0 = none
  std::string fault_plan;     // FaultPlan spec; empty = no injection
  int retry_attempts = 4;     // retry budget when a fault plan is active
  std::string metrics_out;    // metrics snapshot file; empty = no scrape
  std::string trace_out;      // JSON-lines span file; empty = untraced
  int64_t metrics_interval_ms = 0;  // periodic scrape; 0 = exit-only
  std::string persist_dir;    // durable warm state dir; empty = volatile
  std::string fsync = "batch";      // WAL policy: none|batch|always
  std::string crash_point;    // kill-test failpoint spec; empty = off
  std::string profile_out;    // CPU profile JSON (+ .folded); empty = off
  uint64_t trace_sample = 0;  // trace 1-in-N by content hash; 0/1 = all
  std::string flight_dump;    // flight-recorder dump file; empty = stderr-less
  int64_t stall_threshold_ms = 0;  // stall watchdog threshold; 0 = off
};

// Set by the SIGTERM/SIGINT handler (an atomic store is async-signal-
// safe); polled by the shutdown watcher and the round loop.
std::atomic<bool> g_shutdown{false};

extern "C" void HandleShutdownSignal(int) { g_shutdown.store(true); }

// Polls g_shutdown every ~25ms on a background thread and, once set,
// initiates the service drain (Shutdown blocks until in-flight requests
// finalized and the final snapshot landed). RAII like PeriodicScraper;
// destroyed before the service it watches.
class ShutdownWatcher {
 public:
  explicit ShutdownWatcher(ConsolidationService* service) {
    thread_ = std::thread([this, service] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!cv_.wait_for(lock, std::chrono::milliseconds(25),
                           [this] { return done_; })) {
        lock.unlock();
        // Stall watchdog rides the same 25ms tick: a no-op unless
        // --stall-threshold-ms armed it, one latched dump per request.
        service->CheckStalls();
        lock.lock();
        if (g_shutdown.load(std::memory_order_relaxed)) {
          lock.unlock();
          service->Shutdown(/*drain=*/true);
          return;
        }
      }
    });
  }

  ~ShutdownWatcher() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: ustl-serve --manifest FILE\n"
      "                  [--threads N (default: 1; 0 = all cores)]\n"
      "                  [--budget N (default: 100)]\n"
      "                  [--repeat R (default: 1)]\n"
      "                  [--oracle-cache on|off (default: on)]\n"
      "                  [--search-cache on|off (default: on)]\n"
      "                  [--max-cache-entries N (default: 0 = unbounded)]\n"
      "                  [--index-codec raw|block (default: raw)]\n"
      "                  [--events]\n"
      "                  [--deadline-ms N (default: 0 = no deadline)]\n"
      "                  [--fault-plan SPEC (e.g. rate=0.5,fails=2,seed=7;\n"
      "                   default: none; wraps the oracle in seeded fault\n"
      "                   injection and fronts it with bounded retries)]\n"
      "                  [--retry-attempts N (default: 4; retry budget\n"
      "                   used when --fault-plan is active)]\n"
      "                  [--metrics-out FILE (scrape the metrics registry\n"
      "                   into FILE at exit: Prometheus text, or a JSON\n"
      "                   snapshot when FILE ends in .json)]\n"
      "                  [--metrics-interval-ms N (default: 0 = exit-only;\n"
      "                   with --metrics-out, also rescrape every N ms)]\n"
      "                  [--trace-out FILE (append one JSON line per trace\n"
      "                   span; observability only — output CSVs are\n"
      "                   byte-identical traced or not)]\n"
      "                  [--persist-dir DIR (durable warm state: verdict\n"
      "                   cache + approved log WAL-logged and snapshotted\n"
      "                   under DIR, recovered on the next start; outputs\n"
      "                   stay byte-identical — recovery only skips oracle\n"
      "                   calls)]\n"
      "                  [--fsync none|batch|always (default: batch; WAL\n"
      "                   durability policy for --persist-dir)]\n"
      "                  [--crash-point KIND:N (kill-test failpoint:\n"
      "                   SIGKILL the process at the N-th wal_append /\n"
      "                   wal_mid_record / snapshot_temp / snapshot_rename;\n"
      "                   testing only)]\n"
      "                  [--profile-out FILE (enable the CPU-attributed\n"
      "                   profiler; at exit write the per-span-path\n"
      "                   inclusive/exclusive wall+CPU table as JSON to\n"
      "                   FILE and collapsed-stack text — flamegraph.pl /\n"
      "                   speedscope input — to FILE.folded)]\n"
      "                  [--trace-sample N (with --trace-out: trace only\n"
      "                   requests whose table content hash is 0 mod N —\n"
      "                   a pure function of content, so the sampled set\n"
      "                   is identical across threads and runs; 0/1 =\n"
      "                   trace everything)]\n"
      "                  [--flight-dump FILE (append flight-recorder dumps\n"
      "                   — recent-span ring + per-request progress, one\n"
      "                   JSON object per line — on deadline-exceeded /\n"
      "                   errored requests, stalls and drain timeouts)]\n"
      "                  [--stall-threshold-ms N (default: 0 = off; dump\n"
      "                   the flight recorder when a request has been in\n"
      "                   flight longer than N ms, once per request)]\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully: in-flight tables finish and are\n"
      "written, new submits are rejected with status shutting_down, the\n"
      "final snapshot and metrics scrape land atomically, exit code 0.\n"
      "\n"
      "Runs a manifest of tables concurrently through one long-lived\n"
      "consolidation service; per-table output is byte-identical to a\n"
      "serial `ustl-consolidate --approve all` run for any thread count,\n"
      "admission order and cache state. Manifest lines are key=value\n"
      "fields: input= output= [id=] [golden=] [budget=] [cluster-col=].\n"
      "--repeat replays the workload through the same (warm) service;\n"
      "round r >= 2 outputs get an .rR suffix.\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

// Minimal JSON string escaping for event/summary lines (programs and
// labels may contain quotes and backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* EventKindName(ServeEvent::Kind kind) {
  switch (kind) {
    case ServeEvent::Kind::kAdmitted:
      return "admitted";
    case ServeEvent::Kind::kVerdict:
      return "verdict";
    case ServeEvent::Kind::kColumnDone:
      return "column_done";
    case ServeEvent::Kind::kRequestDone:
      return "request_done";
    case ServeEvent::Kind::kRetried:
      return "retried";
    case ServeEvent::Kind::kCancelled:
      return "cancelled";
    case ServeEvent::Kind::kBreakerOpen:
      return "breaker_open";
  }
  return "unknown";
}

void PrintEvent(const ServeEvent& event) {
  // The service serializes on_event invocations, so printf lines never
  // interleave mid-line. seq is the 1-based per-request event sequence;
  // ts_us is microseconds since service construction — both scheduling-
  // dependent, so determinism comparisons must ignore them.
  std::printf("{\"event\": \"%s\", \"request\": %llu, \"seq\": %llu, "
              "\"ts_us\": %lld, \"label\": \"%s\"",
              EventKindName(event.kind),
              static_cast<unsigned long long>(event.request),
              static_cast<unsigned long long>(event.seq),
              static_cast<long long>(event.ts_us),
              JsonEscape(event.label).c_str());
  if (event.kind == ServeEvent::Kind::kVerdict) {
    std::printf(", \"column\": \"%s\", \"presented\": %zu, \"size\": %zu, "
                "\"approved\": %s, \"direction\": \"%s\", \"program\": "
                "\"%s\"",
                JsonEscape(event.column).c_str(), event.presented,
                event.group_size, event.approved ? "true" : "false",
                event.direction == ReplaceDirection::kLhsToRhs ? "lhs->rhs"
                                                               : "rhs->lhs",
                JsonEscape(event.program).c_str());
  } else if (event.kind == ServeEvent::Kind::kColumnDone ||
             event.kind == ServeEvent::Kind::kRequestDone) {
    if (event.kind == ServeEvent::Kind::kColumnDone) {
      std::printf(", \"column\": \"%s\"", JsonEscape(event.column).c_str());
    }
    std::printf(", \"presented\": %zu, \"approved\": %zu, \"edits\": %zu",
                event.groups_presented, event.groups_approved, event.edits);
    if (event.kind == ServeEvent::Kind::kRequestDone) {
      std::printf(", \"status\": \"%s\"", RequestStatusName(event.status));
    }
  } else if (event.kind == ServeEvent::Kind::kRetried) {
    std::printf(", \"attempt\": %d", event.attempt);
  } else if (event.kind == ServeEvent::Kind::kCancelled) {
    std::printf(", \"status\": \"%s\"", RequestStatusName(event.status));
  } else if (event.kind == ServeEvent::Kind::kBreakerOpen) {
    std::printf(", \"open\": %s",
                event.status == RequestStatus::kOk ? "false" : "true");
  }
  std::printf("}\n");
  std::fflush(stdout);
}

// Runs `scrape` every `interval_ms` on a background thread until
// destroyed (RAII, so early error returns in main never leave the
// thread running). The scrape callback only READS the metrics registry
// — it can race harmlessly with the final exit-time scrape but never
// perturbs serving.
class PeriodicScraper {
 public:
  PeriodicScraper(std::function<void()> scrape, int64_t interval_ms)
      : scrape_(std::move(scrape)) {
    thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return done_; })) {
        lock.unlock();
        scrape_();
        lock.lock();
      }
    });
  }

  ~PeriodicScraper() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::function<void()> scrape_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

Result<std::vector<ManifestEntry>> ParseManifest(const std::string& content) {
  std::vector<ManifestEntry> entries;
  size_t line_start = 0;
  size_t line_number = 0;
  while (line_start <= content.size()) {
    size_t line_end = content.find('\n', line_start);
    if (line_end == std::string::npos) line_end = content.size();
    std::string line = content.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);

    ManifestEntry entry;
    bool any_field = false;
    size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && std::isspace(
                 static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      size_t end = pos;
      while (end < line.size() && !std::isspace(
                 static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      if (end == pos) break;
      const std::string token = line.substr(pos, end - pos);
      pos = end;
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": expected key=value, got '" +
                                       token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      any_field = true;
      if (key == "id") {
        entry.id = value;
      } else if (key == "input") {
        entry.input = value;
      } else if (key == "output") {
        entry.output = value;
      } else if (key == "golden") {
        entry.golden = value;
      } else if (key == "cluster-col") {
        entry.cluster_col = value;
      } else if (key == "budget") {
        entry.budget = std::strtoull(value.c_str(), nullptr, 10);
      } else {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": unknown key '" + key + "'");
      }
    }
    if (!any_field) continue;  // blank / comment-only line
    if (entry.input.empty() || entry.output.empty()) {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_number) +
                                     ": input= and output= are required");
    }
    if (entry.id.empty()) entry.id = entry.input;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--manifest") == 0) {
      args.manifest = next("--manifest");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      args.threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      args.budget = std::strtoull(next("--budget"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      args.repeat = std::strtoull(next("--repeat"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-cache-entries") == 0) {
      args.max_cache_entries =
          std::strtoull(next("--max-cache-entries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--oracle-cache") == 0) {
      args.oracle_cache = next("--oracle-cache");
    } else if (std::strcmp(argv[i], "--search-cache") == 0) {
      args.search_cache = next("--search-cache");
    } else if (std::strcmp(argv[i], "--index-codec") == 0) {
      args.index_codec = next("--index-codec");
    } else if (std::strcmp(argv[i], "--events") == 0) {
      args.events = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      args.deadline_ms = std::strtoll(next("--deadline-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      args.fault_plan = next("--fault-plan");
    } else if (std::strcmp(argv[i], "--retry-attempts") == 0) {
      args.retry_attempts = std::atoi(next("--retry-attempts"));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      args.metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--metrics-interval-ms") == 0) {
      args.metrics_interval_ms =
          std::strtoll(next("--metrics-interval-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      args.trace_out = next("--trace-out");
    } else if (std::strcmp(argv[i], "--persist-dir") == 0) {
      args.persist_dir = next("--persist-dir");
    } else if (std::strcmp(argv[i], "--fsync") == 0) {
      args.fsync = next("--fsync");
    } else if (std::strcmp(argv[i], "--crash-point") == 0) {
      args.crash_point = next("--crash-point");
    } else if (std::strcmp(argv[i], "--profile-out") == 0) {
      args.profile_out = next("--profile-out");
    } else if (std::strcmp(argv[i], "--trace-sample") == 0) {
      args.trace_sample = std::strtoull(next("--trace-sample"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--flight-dump") == 0) {
      args.flight_dump = next("--flight-dump");
    } else if (std::strcmp(argv[i], "--stall-threshold-ms") == 0) {
      args.stall_threshold_ms =
          std::strtoll(next("--stall-threshold-ms"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  if (args.manifest.empty() || args.repeat == 0 ||
      (args.oracle_cache != "on" && args.oracle_cache != "off") ||
      (args.search_cache != "on" && args.search_cache != "off") ||
      (args.index_codec != "raw" && args.index_codec != "block")) {
    Usage();
    return 2;
  }

  Result<std::string> manifest_content = ReadFileToString(args.manifest);
  if (!manifest_content.ok()) return Fail(manifest_content.status());
  Result<std::vector<ManifestEntry>> entries =
      ParseManifest(*manifest_content);
  if (!entries.ok()) return Fail(entries.status());
  if (entries->empty()) {
    std::fprintf(stderr, "manifest %s lists no tables\n",
                 args.manifest.c_str());
    return 2;
  }

  // Read every input once; each round standardizes a fresh copy.
  std::vector<ClusteredCsv> originals;
  originals.reserve(entries->size());
  for (const ManifestEntry& entry : *entries) {
    Result<std::string> content = ReadFileToString(entry.input);
    if (!content.ok()) return Fail(content.status());
    Result<ClusteredCsv> clustered =
        ReadClusteredCsv(*content, entry.cluster_col);
    if (!clustered.ok()) return Fail(clustered.status());
    originals.push_back(std::move(*clustered));
  }

  ServiceOptions service_options;
  service_options.num_threads = args.threads;
  if (!args.persist_dir.empty()) {
    service_options.persist_dir = args.persist_dir;
    Result<FsyncPolicy> policy = ParseFsyncPolicy(args.fsync);
    if (!policy.ok()) return Fail(policy.status());
    service_options.persist.fsync = *policy;
  }
  if (!args.crash_point.empty()) {
    Status armed = CrashPoint::ArmFromSpec(args.crash_point);
    if (!armed.ok()) return Fail(armed);
  }
  service_options.broker.cache_verdicts = args.oracle_cache == "on";
  service_options.broker.max_cache_entries = args.max_cache_entries;
  service_options.share_search_cache = args.search_cache == "on";
  service_options.framework.budget_per_column = args.budget;
  service_options.framework.grouping.reuse_search_results =
      args.search_cache == "on";
  service_options.framework.grouping.index_codec =
      args.index_codec == "block" ? IndexCodec::kBlock : IndexCodec::kRaw;
  // Diagnosis layer: the profiler folds every request's spans when
  // --profile-out asks for it; head sampling thins only the user trace
  // stream; the flight recorder (always on) dumps through the sink
  // below. The dump file must outlive the service — the destructor's
  // drain can still fire a drain_timeout dump.
  service_options.enable_profiler = !args.profile_out.empty();
  service_options.trace_sample = args.trace_sample;
  service_options.stall_threshold_ms = args.stall_threshold_ms;
  std::unique_ptr<std::ofstream> flight_stream;
  auto flight_mutex = std::make_shared<std::mutex>();
  if (!args.flight_dump.empty()) {
    flight_stream = std::make_unique<std::ofstream>(args.flight_dump);
    if (!*flight_stream) {
      std::fprintf(stderr, "cannot open --flight-dump %s\n",
                   args.flight_dump.c_str());
      return 1;
    }
    std::ofstream* stream = flight_stream.get();
    service_options.flight_dump_sink = [stream,
                                        flight_mutex](const std::string& dump) {
      // Dumps fire from worker threads and the watchdog concurrently;
      // serialize so each lands as one intact JSON line.
      std::lock_guard<std::mutex> lock(*flight_mutex);
      *stream << dump << "\n";
      stream->flush();
    };
  }
  // Oracle chain: approve-all backend, optionally wrapped in seeded fault
  // injection (--fault-plan), in which case the service fronts it with a
  // retry/breaker decorator so eventually-successful plans still produce
  // byte-identical output (the fault-sweep CI legs byte-compare this).
  ApproveAllOracle approve_all;
  VerificationOracle* oracle = &approve_all;
  std::unique_ptr<FaultInjectingOracle> fault_oracle;
  if (!args.fault_plan.empty()) {
    Result<FaultPlan> plan = FaultPlan::FromSpec(args.fault_plan);
    if (!plan.ok()) return Fail(plan.status());
    fault_oracle = std::make_unique<FaultInjectingOracle>(oracle, *plan);
    oracle = fault_oracle.get();
    service_options.enable_retry = true;
    service_options.retry.max_attempts = args.retry_attempts;
  }
  std::unique_ptr<ConsolidationService> service_ptr;
  try {
    service_ptr =
        std::make_unique<ConsolidationService>(oracle, service_options);
  } catch (const std::exception& e) {
    // Unreadably corrupt persist state: refuse to serve with silently
    // partial warm state (wipe the dir or fix the files to proceed).
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  ConsolidationService& service = *service_ptr;
  std::printf("serving %zu table(s) x %zu round(s) on %d worker(s)\n",
              entries->size(), args.repeat, service.workers());
  if (!args.persist_dir.empty()) {
    const PersistStats persist = service.stats().persist;
    std::printf("{\"persist\": \"%s\", \"fsync\": \"%s\", "
                "\"recovered_records\": %llu, "
                "\"truncated_tail_bytes\": %llu}\n",
                JsonEscape(args.persist_dir).c_str(), args.fsync.c_str(),
                static_cast<unsigned long long>(persist.recovered_records),
                static_cast<unsigned long long>(persist.truncated_tail_bytes));
  }

  // Graceful drain on SIGTERM/SIGINT: the watcher initiates Shutdown
  // (in-flight requests finish; new submits reject) and the round loop
  // breaks at its next boundary.
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  auto watcher = std::make_unique<ShutdownWatcher>(&service);

  // Observability taps. The trace sink appends one JSON line per span as
  // requests finish spans; the metrics scrape snapshots the registry —
  // exit-time always, periodically when --metrics-interval-ms is set.
  std::unique_ptr<std::ofstream> trace_stream;
  std::unique_ptr<JsonLinesTraceSink> trace_sink;
  if (!args.trace_out.empty()) {
    trace_stream = std::make_unique<std::ofstream>(args.trace_out);
    if (!*trace_stream) {
      std::fprintf(stderr, "cannot open --trace-out %s\n",
                   args.trace_out.c_str());
      return 1;
    }
    trace_sink = std::make_unique<JsonLinesTraceSink>(trace_stream.get());
  }
  auto scrape_metrics = [&service, &args] {
    const std::string& path = args.metrics_out;
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    const std::string body =
        json ? service.metrics().WriteJson() : service.metrics().WriteText();
    // Write-temp-rename: a reader (or a crash) never sees a truncated
    // scrape under the published name.
    Status status = WriteFileAtomic(path, body);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics scrape: %s\n",
                   status.ToString().c_str());
    }
  };
  std::unique_ptr<PeriodicScraper> scraper;
  if (!args.metrics_out.empty() && args.metrics_interval_ms > 0) {
    scraper = std::make_unique<PeriodicScraper>(scrape_metrics,
                                                args.metrics_interval_ms);
  }

  ServiceStats previous;  // cumulative stats at the last round boundary
  for (size_t round = 1; round <= args.repeat; ++round) {
    std::vector<ClusteredCsv> tables = originals;  // fresh copies
    std::vector<uint64_t> handles(entries->size());
    Timer timer;
    for (size_t t = 0; t < entries->size(); ++t) {
      RequestOptions request;
      request.label = (*entries)[t].id;
      request.deadline_ms = args.deadline_ms;
      if ((*entries)[t].budget > 0) {
        FrameworkOptions framework = service_options.framework;
        framework.budget_per_column = (*entries)[t].budget;
        request.framework = framework;
      }
      if (args.events) request.on_event = PrintEvent;
      request.trace_sink = trace_sink.get();
      handles[t] = service.Submit(&tables[t].table, std::move(request));
    }

    uint64_t searches = 0;
    uint64_t warm_hits = 0;
    for (size_t t = 0; t < entries->size(); ++t) {
      const ManifestEntry& entry = (*entries)[t];
      RequestResult result = service.Wait(handles[t]);
      if (result.status != RequestStatus::kOk) {
        // Cancelled / past-deadline requests committed nothing; report
        // the typed status instead of writing an untouched table.
        std::printf("{\"table\": \"%s\", \"round\": %zu, \"status\": "
                    "\"%s\"}\n",
                    JsonEscape(entry.id).c_str(), round,
                    RequestStatusName(result.status));
        continue;
      }
      for (const ColumnRunResult& column : result.per_column) {
        searches += column.grouping.searches;
        warm_hits += column.grouping.warm_hits;
      }
      const std::string suffix =
          round == 1 ? "" : ".r" + std::to_string(round);
      Status status = WriteStringToFile(entry.output + suffix,
                                        WriteClusteredCsv(tables[t]));
      if (!status.ok()) return Fail(status);
      if (!entry.golden.empty()) {
        status = WriteStringToFile(
            entry.golden + suffix,
            WriteGoldenCsv(tables[t], result.golden_records));
        if (!status.ok()) return Fail(status);
      }
    }

    const double seconds = timer.ElapsedSeconds();
    const ServiceStats now = service.stats();
    std::printf(
        "{\"round\": %zu, \"tables\": %zu, \"seconds\": %.4f, "
        "\"tables_per_sec\": %.2f, \"questions\": %zu, "
        "\"oracle_calls\": %zu, \"oracle_cache_hits\": %zu, "
        "\"oracle_evictions\": %zu, \"searches\": %llu, "
        "\"search_warm_hits\": %llu, \"warm_started_engines\": %zu, "
        "\"retries\": %zu, \"recovered\": %zu, \"breaker_opens\": %zu, "
        "\"cancelled\": %zu, \"deadline_exceeded\": %zu}\n",
        round, entries->size(), seconds,
        seconds > 0 ? static_cast<double>(entries->size()) / seconds : 0.0,
        now.oracle.questions - previous.oracle.questions,
        now.oracle.backend_calls - previous.oracle.backend_calls,
        now.oracle.cache_hits - previous.oracle.cache_hits,
        now.oracle.evictions - previous.oracle.evictions,
        static_cast<unsigned long long>(searches),
        static_cast<unsigned long long>(warm_hits),
        now.search_cache.warm_starts - previous.search_cache.warm_starts,
        now.retry.retries - previous.retry.retries,
        now.retry.recovered - previous.retry.recovered,
        now.retry.breaker_opens - previous.retry.breaker_opens,
        now.requests_cancelled - previous.requests_cancelled,
        now.requests_deadline_exceeded - previous.requests_deadline_exceeded);
    previous = now;

    if (g_shutdown.load(std::memory_order_relaxed)) {
      std::printf("{\"shutdown\": \"graceful\", \"rounds_completed\": %zu}\n",
                  round);
      break;
    }
  }

  // Join the watcher first (a drain it started completes before the
  // join returns), then make sure the final snapshot has landed —
  // Shutdown is idempotent — so the exit scrape below reports it.
  watcher.reset();
  service.Shutdown(/*drain=*/true);
  scraper.reset();  // stop the periodic thread before the final scrape
  if (!args.metrics_out.empty()) scrape_metrics();
  if (trace_stream) trace_stream->flush();
  if (!args.profile_out.empty() && service.profiler() != nullptr) {
    // The drain above closed every span, so the table is final. JSON for
    // tooling, collapsed-stack text for flamegraph.pl / speedscope.
    Status status =
        WriteFileAtomic(args.profile_out, service.profiler()->WriteJson());
    if (!status.ok()) return Fail(status);
    status = WriteFileAtomic(args.profile_out + ".folded",
                             service.profiler()->WriteFolded());
    if (!status.ok()) return Fail(status);
  }
  return 0;
}

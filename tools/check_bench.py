#!/usr/bin/env python3
"""Perf-regression gate over the recorded BENCH_* trajectory.

Compares a fresh bench run (bench_micro_kernels plus
bench_robustness_serve, JSON lines on a file or stdin) against the most
recent recorded BENCH_*_posting_codec.json and fails on a >15%
regression. Only hardware-independent *ratio* metrics are gated —
speedups, compression ratios, allocation counts, skip/prune activity —
never absolute nanoseconds: CI boxes and the box that recorded the
trajectory do not share a clock, but they must agree that the fused
kernel beats the seed kernel, that the block codec halves the index, and
that the skip/prune/zero-alloc machinery actually engages.

Usage:
  check_bench.py --fresh fresh.json [--recorded BENCH_....json]
                 [--tolerance 0.15]

With no --recorded, the newest BENCH_*_posting_codec.json next to the
repository root (this script's parent directory) is used.
"""

import argparse
import glob
import json
import os
import sys

# (bench, variant) -> list of (metric, kind) to gate.
#   ratio_min: fresh >= recorded * (1 - tolerance)   (bigger is better)
#   exact_max: fresh <= value                        (hard ceiling)
#   nonzero:   fresh > 0                             (machinery engaged)
GATES = {
    ("posting_extend_kernel", "fused"): [
        ("speedup_vs_seed", "ratio_min", None),
        ("allocs_per_extend", "exact_max", 0.0),
    ],
    ("posting_codec_memory", "block"): [
        ("compression_ratio", "ratio_min", None),
        # The ISSUE 6 acceptance floor, independent of the recording.
        ("compression_ratio", "floor", 2.0),
    ],
    ("skip_join_kernel", "block"): [
        ("blocks_skipped", "nonzero", None),
        ("blocks_decoded", "nonzero", None),
        ("allocs_per_extend", "exact_max", 0.0),
    ],
    ("pivot_search_codec", "block"): [
        ("blocks_skipped", "nonzero", None),
        ("joins_pruned", "nonzero", None),
    ],
    # Robustness legs (ISSUE 7) gate only hardware-independent facts: the
    # fault machinery engaged, nothing exhausted its retry budget, output
    # stayed byte-identical, cancellation returned in bounded time (a
    # hang detector, hence the generous ceiling), and the armed-but-idle
    # plumbing costs <= 2% over the plain service (best-of-5 minima).
    ("robustness_serve", "fault_sweep"): [
        ("faults_injected", "nonzero", None),
        ("retries", "nonzero", None),
        ("recovered", "nonzero", None),
        ("exhausted", "exact_max", 0.0),
        ("byte_identical", "nonzero", None),
    ],
    ("robustness_serve", "breaker"): [
        ("breaker_opens", "nonzero", None),
        ("short_circuits", "nonzero", None),
        ("service_alive", "nonzero", None),
    ],
    ("robustness_serve", "cancel"): [
        ("cancelled", "nonzero", None),
        ("cancel_latency_ms", "exact_max", 5000.0),
    ],
    ("robustness_serve", "zero_fault"): [
        ("overhead_ratio", "exact_max", 1.02),
    ],
    # Observability (ISSUE 8 + 10): full diagnosis (trace formatting +
    # CPU-attributed profile folding + a live metrics scrape) must cost
    # <= 2% process CPU over the production default (flight recorder on
    # in both sides — it is always-on by design), emit real spans,
    # actually record into the ring and fold into the profile table,
    # and never perturb the output bytes.
    ("robustness_serve", "obs_overhead"): [
        ("overhead_ratio", "exact_max", 1.02),
        ("spans", "nonzero", None),
        ("recorder_spans", "nonzero", None),
        ("profile_folded", "nonzero", None),
        ("byte_identical", "nonzero", None),
    ],
    # Durability (ISSUE 9): the WAL + snapshot layer (fsync=batch) must
    # cost <= 5% over the plain service (best-of-5 minima; fsyncs are
    # real I/O, hence the wider ceiling than the in-process legs), a warm
    # restart must recover a nonzero record count and strictly cut
    # backend calls, and persisted output must stay byte-identical.
    ("robustness_serve", "persist_overhead"): [
        ("overhead_ratio", "exact_max", 1.05),
        ("recovered_records", "nonzero", None),
        ("warm_call_savings", "nonzero", None),
        ("byte_identical", "nonzero", None),
    ],
}


def load_records(path):
    """Parses JSON lines, skipping non-JSON noise, keyed by (bench, variant)."""
    records = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = (record.get("bench"), record.get("variant"))
            if key[0] is not None:
                records[key] = record
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="fresh bench output (JSON lines; '-' = stdin)")
    parser.add_argument("--recorded", default=None,
                        help="recorded trajectory file (default: newest "
                             "BENCH_*_posting_codec.json beside the repo root)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative regression on ratio metrics")
    args = parser.parse_args()

    if args.recorded is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        candidates = sorted(glob.glob(
            os.path.join(root, "BENCH_*_posting_codec.json")))
        if not candidates:
            print("check_bench: no recorded BENCH_*_posting_codec.json found",
                  file=sys.stderr)
            return 2
        args.recorded = candidates[-1]

    if args.fresh == "-":
        fresh_path = "/dev/stdin"
    else:
        fresh_path = args.fresh
    fresh = load_records(fresh_path)
    recorded = load_records(args.recorded)

    failures = []
    checks = 0
    for key, gates in GATES.items():
        bench, variant = key
        fresh_record = fresh.get(key)
        if fresh_record is None:
            failures.append(f"{bench}/{variant}: missing from fresh run")
            continue
        for metric, kind, bound in gates:
            value = fresh_record.get(metric)
            if value is None:
                failures.append(f"{bench}/{variant}: fresh run lacks {metric}")
                continue
            checks += 1
            if kind == "ratio_min":
                baseline_record = recorded.get(key)
                if baseline_record is None or metric not in baseline_record:
                    failures.append(
                        f"{bench}/{variant}: {metric} missing from recorded "
                        f"trajectory {os.path.basename(args.recorded)}")
                    continue
                baseline = float(baseline_record[metric])
                minimum = baseline * (1.0 - args.tolerance)
                if float(value) < minimum:
                    failures.append(
                        f"{bench}/{variant}: {metric} regressed: "
                        f"{value:.3f} < {minimum:.3f} "
                        f"(recorded {baseline:.3f}, "
                        f"tolerance {args.tolerance:.0%})")
            elif kind == "floor":
                if float(value) < bound:
                    failures.append(
                        f"{bench}/{variant}: {metric} {value:.3f} below the "
                        f"acceptance floor {bound:.3f}")
            elif kind == "exact_max":
                if float(value) > bound:
                    failures.append(
                        f"{bench}/{variant}: {metric} {value:.3f} exceeds "
                        f"{bound:.3f}")
            elif kind == "nonzero":
                if float(value) <= 0:
                    failures.append(
                        f"{bench}/{variant}: {metric} is zero — the "
                        f"gated machinery never engaged")

    if failures:
        print(f"check_bench: {len(failures)} failure(s) vs "
              f"{os.path.basename(args.recorded)}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: {checks} gated metric(s) OK vs "
          f"{os.path.basename(args.recorded)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validates a --trace-out JSON-lines span stream (obs/trace.h schema).

Spans arrive in emission order (children close before parents — RAII),
so the whole file is buffered and grouped by request id before any
structural check. Per request, the contract is:

  * exactly one root span named "request" with parent 0 and id 1
    (request closure: the stream must not end with the root missing);
  * span ids are unique, and every child id is greater than its parent
    id (ids come from one per-request counter, and the parent is open
    when the child is created);
  * every non-zero parent resolves to a span of the same request;
  * end_us >= start_us on every span (point events are equal), and a
    child's interval is contained in its parent's.

Usage: check_trace.py TRACE_FILE [--min-requests N]
"""

import argparse
import collections
import json
import sys


def load_spans(path):
    """Returns {request_id: [span, ...]}, rejecting malformed lines."""
    per_request = collections.OrderedDict()
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"check_trace: {path}:{number}: not JSON: {error}")
            for field in ("request", "id", "parent", "name", "start_us",
                          "end_us"):
                if field not in span:
                    raise SystemExit(
                        f"check_trace: {path}:{number}: missing '{field}'")
            per_request.setdefault(span["request"], []).append(span)
    return per_request


def check_request(request_id, spans, failures):
    by_id = {}
    for span in spans:
        if span["id"] in by_id:
            failures.append(f"{request_id}: duplicate span id {span['id']}")
            return
        by_id[span["id"]] = span

    roots = [s for s in spans if s["parent"] == 0]
    if len(roots) != 1 or roots[0]["name"] != "request":
        failures.append(
            f"{request_id}: expected exactly one 'request' root with "
            f"parent 0, found {[(s['id'], s['name']) for s in roots]}")
        return
    if roots[0]["id"] != 1:
        failures.append(
            f"{request_id}: root span id is {roots[0]['id']}, expected 1")

    for span in spans:
        if span["end_us"] < span["start_us"]:
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) ends "
                f"before it starts: [{span['start_us']}, {span['end_us']}]")
        if span["parent"] == 0:
            continue
        parent = by_id.get(span["parent"])
        if parent is None:
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) has "
                f"unresolved parent {span['parent']}")
            continue
        if span["id"] <= span["parent"]:
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) does "
                f"not outnumber its parent {span['parent']}")
        if (span["start_us"] < parent["start_us"]
                or span["end_us"] > parent["end_us"]):
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) "
                f"[{span['start_us']}, {span['end_us']}] escapes parent "
                f"{parent['id']} ({parent['name']}) "
                f"[{parent['start_us']}, {parent['end_us']}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="JSON-lines span file (--trace-out)")
    parser.add_argument("--min-requests", type=int, default=1,
                        help="fail unless at least N requests were traced")
    args = parser.parse_args()

    per_request = load_spans(args.trace)
    if len(per_request) < args.min_requests:
        print(f"check_trace: only {len(per_request)} traced request(s), "
              f"expected >= {args.min_requests}", file=sys.stderr)
        return 1

    failures = []
    spans = 0
    for request_id, request_spans in per_request.items():
        spans += len(request_spans)
        check_request(request_id, request_spans, failures)

    if failures:
        print(f"check_trace: {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_trace: {spans} span(s) across {len(per_request)} "
          f"request(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validates ustl-serve observability artifacts (obs/ schemas).

Default mode checks a --trace-out JSON-lines span stream (obs/trace.h
schema). Spans arrive in emission order (children close before parents —
RAII), so the whole file is buffered and grouped by request id before
any structural check. Per request, the contract is:

  * exactly one root span named "request" with parent 0 and id 1
    (request closure: the stream must not end with the root missing);
  * span ids are unique, and every child id is greater than its parent
    id (ids come from one per-request counter, and the parent is open
    when the child is created);
  * every non-zero parent resolves to a span of the same request;
  * end_us >= start_us on every span (point events are equal), a
    child's interval is contained in its parent's, and cpu_us sits in
    [0, wall] (thread CPU can never exceed the wall interval; hand-
    built cross-thread spans carry 0).

--profile FILE validates a --profile-out JSON dump (obs/profile.h):
every row carries path/name/count/wall_us/self_wall_us/cpu_us/
self_cpu_us, inclusive >= exclusive >= 0, the name is the path's leaf
segment, and folded_spans/dropped_spans are present.

--folded FILE validates the collapsed-stack text next to it: every
line is "path value" with a positive integer value, flamegraph.pl /
speedscope input.

--flight FILE validates a --flight-dump JSON-lines file: each line is
one {"flight_recorder": {...}} dump with reason/dumped_us/capacity/
recorded/spans/context, every ring span schema-checked like a trace
span (no per-request structure: the ring is a cross-request tail), and
context carrying the requests/broker/retry/persist progress objects.

Usage: check_trace.py TRACE_FILE [--min-requests N]
       check_trace.py --profile FILE [--folded FILE]
       check_trace.py --flight FILE [--min-dumps N] [--reason R]
"""

import argparse
import collections
import json
import sys

SPAN_FIELDS = ("request", "id", "parent", "name", "start_us", "end_us",
               "cpu_us")


def check_span_fields(span, where, failures):
    for field in SPAN_FIELDS:
        if field not in span:
            failures.append(f"{where}: missing '{field}'")
            return False
    wall = span["end_us"] - span["start_us"]
    if wall < 0:
        failures.append(
            f"{where}: span {span['id']} ({span['name']}) ends before it "
            f"starts: [{span['start_us']}, {span['end_us']}]")
    if span["cpu_us"] < 0 or span["cpu_us"] > max(wall, 0):
        failures.append(
            f"{where}: span {span['id']} ({span['name']}) cpu_us "
            f"{span['cpu_us']} outside [0, wall={wall}]")
    return True


def load_spans(path):
    """Returns {request_id: [span, ...]}, rejecting malformed lines."""
    per_request = collections.OrderedDict()
    failures = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"check_trace: {path}:{number}: not JSON: {error}")
            if not check_span_fields(span, f"{path}:{number}", failures):
                raise SystemExit(f"check_trace: {failures[-1]}")
            per_request.setdefault(span["request"], []).append(span)
    return per_request, failures


def check_request(request_id, spans, failures):
    by_id = {}
    for span in spans:
        if span["id"] in by_id:
            failures.append(f"{request_id}: duplicate span id {span['id']}")
            return
        by_id[span["id"]] = span

    roots = [s for s in spans if s["parent"] == 0]
    if len(roots) != 1 or roots[0]["name"] != "request":
        failures.append(
            f"{request_id}: expected exactly one 'request' root with "
            f"parent 0, found {[(s['id'], s['name']) for s in roots]}")
        return
    if roots[0]["id"] != 1:
        failures.append(
            f"{request_id}: root span id is {roots[0]['id']}, expected 1")

    for span in spans:
        if span["parent"] == 0:
            continue
        parent = by_id.get(span["parent"])
        if parent is None:
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) has "
                f"unresolved parent {span['parent']}")
            continue
        if span["id"] <= span["parent"]:
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) does "
                f"not outnumber its parent {span['parent']}")
        if (span["start_us"] < parent["start_us"]
                or span["end_us"] > parent["end_us"]):
            failures.append(
                f"{request_id}: span {span['id']} ({span['name']}) "
                f"[{span['start_us']}, {span['end_us']}] escapes parent "
                f"{parent['id']} ({parent['name']}) "
                f"[{parent['start_us']}, {parent['end_us']}]")


def check_profile(path, failures):
    """Validates a --profile-out dump; returns the row count."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            dump = json.load(handle)
        except json.JSONDecodeError as error:
            raise SystemExit(f"check_trace: {path}: not JSON: {error}")
    for field in ("profile", "folded_spans", "dropped_spans"):
        if field not in dump:
            failures.append(f"{path}: missing '{field}'")
            return 0
    rows = dump["profile"]
    previous_path = None
    for index, row in enumerate(rows):
        where = f"{path}: row {index}"
        missing = [f for f in ("path", "name", "count", "wall_us",
                               "self_wall_us", "cpu_us", "self_cpu_us")
                   if f not in row]
        if missing:
            failures.append(f"{where}: missing {missing}")
            continue
        leaf = row["path"].rsplit(";", 1)[-1]
        if row["name"] != leaf:
            failures.append(
                f"{where}: name '{row['name']}' is not the path leaf "
                f"'{leaf}'")
        if row["count"] <= 0:
            failures.append(f"{where}: nonpositive count {row['count']}")
        for inclusive, exclusive in (("wall_us", "self_wall_us"),
                                     ("cpu_us", "self_cpu_us")):
            if row[exclusive] < 0:
                failures.append(
                    f"{where}: negative {exclusive} {row[exclusive]}")
            if row[inclusive] < row[exclusive]:
                failures.append(
                    f"{where}: {inclusive} {row[inclusive]} < {exclusive} "
                    f"{row[exclusive]} (inclusive must cover exclusive)")
        if previous_path is not None and row["path"] <= previous_path:
            failures.append(f"{where}: paths not strictly sorted")
        previous_path = row["path"]
    return len(rows)


def check_folded(path, failures):
    """Validates collapsed-stack text; returns the line count."""
    lines = 0
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            lines += 1
            where = f"{path}:{number}"
            head, sep, value = line.rpartition(" ")
            if not sep or not head:
                failures.append(f"{where}: expected 'path value'")
                continue
            if not value.isdigit() or int(value) <= 0:
                failures.append(
                    f"{where}: value '{value}' is not a positive integer")
    return lines


def check_flight(path, failures):
    """Validates a --flight-dump JSON-lines file; returns (dumps, reasons)."""
    dumps = 0
    reasons = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{number}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"check_trace: {where}: not JSON: {error}")
            dump = record.get("flight_recorder")
            if not isinstance(dump, dict):
                failures.append(f"{where}: missing 'flight_recorder' object")
                continue
            dumps += 1
            missing = [f for f in ("reason", "dumped_us", "capacity",
                                   "recorded", "spans", "context")
                       if f not in dump]
            if missing:
                failures.append(f"{where}: missing {missing}")
                continue
            reasons.append(dump["reason"])
            if len(dump["spans"]) > dump["capacity"]:
                failures.append(
                    f"{where}: {len(dump['spans'])} ring spans exceed "
                    f"capacity {dump['capacity']}")
            if dump["recorded"] < len(dump["spans"]):
                failures.append(
                    f"{where}: recorded {dump['recorded']} < ring size "
                    f"{len(dump['spans'])}")
            for index, span in enumerate(dump["spans"]):
                check_span_fields(span, f"{where}: ring span {index}",
                                  failures)
            context = dump["context"]
            if not isinstance(context, dict):
                failures.append(f"{where}: context is not an object")
                continue
            if context:  # {} is the valid empty-context form
                for section in ("requests", "broker", "retry", "persist"):
                    if section not in context:
                        failures.append(
                            f"{where}: context missing '{section}'")
                for request in context.get("requests", []):
                    for field in ("id", "label", "columns", "dispatched",
                                  "completed", "age_us"):
                        if field not in request:
                            failures.append(
                                f"{where}: progress entry missing "
                                f"'{field}'")
    return dumps, reasons


def finish(failures, ok_message):
    if failures:
        print(f"check_trace: {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(ok_message)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?",
                        help="JSON-lines span file (--trace-out)")
    parser.add_argument("--min-requests", type=int, default=1,
                        help="fail unless at least N requests were traced")
    parser.add_argument("--profile",
                        help="validate a --profile-out JSON dump instead")
    parser.add_argument("--folded",
                        help="with --profile: also validate the collapsed-"
                             "stack text file")
    parser.add_argument("--flight",
                        help="validate a --flight-dump JSON-lines file "
                             "instead")
    parser.add_argument("--min-dumps", type=int, default=1,
                        help="with --flight: fail unless at least N dumps")
    parser.add_argument("--reason",
                        help="with --flight: require at least one dump "
                             "with this reason")
    args = parser.parse_args()

    failures = []
    if args.profile:
        rows = check_profile(args.profile, failures)
        folded_lines = 0
        if args.folded:
            folded_lines = check_folded(args.folded, failures)
        if rows == 0:
            failures.append(f"{args.profile}: empty profile table")
        return finish(failures,
                      f"check_trace: profile OK ({rows} path(s), "
                      f"{folded_lines} folded line(s))")

    if args.flight:
        dumps, reasons = check_flight(args.flight, failures)
        if dumps < args.min_dumps:
            failures.append(
                f"{args.flight}: only {dumps} dump(s), expected >= "
                f"{args.min_dumps}")
        if args.reason and args.reason not in reasons:
            failures.append(
                f"{args.flight}: no dump with reason '{args.reason}' "
                f"(saw {sorted(set(reasons))})")
        return finish(failures,
                      f"check_trace: {dumps} flight dump(s) OK "
                      f"(reasons: {sorted(set(reasons))})")

    if not args.trace:
        parser.error("TRACE_FILE required unless --profile/--flight given")

    per_request, failures = load_spans(args.trace)
    if len(per_request) < args.min_requests:
        print(f"check_trace: only {len(per_request)} traced request(s), "
              f"expected >= {args.min_requests}", file=sys.stderr)
        return 1

    spans = 0
    for request_id, request_spans in per_request.items():
        spans += len(request_spans)
        check_request(request_id, request_spans, failures)

    return finish(failures,
                  f"check_trace: {spans} span(s) across {len(per_request)} "
                  f"request(s) OK")


if __name__ == "__main__":
    sys.exit(main())

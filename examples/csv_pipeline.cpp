// CSV pipeline: the library as a downstream user would deploy it.
//
// Reads entity-resolution output from CSV (a cluster-key column plus
// attribute columns), standardizes every attribute with the grouping
// pipeline, persists the approved transformations in the parseable log
// format, and replays that log on a second batch of the same feed —
// standardizing it with zero additional questions.
//
//   $ ./examples/csv_pipeline
#include <cstdio>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "consolidate/replay.h"
#include "consolidate/truth_discovery.h"
#include "dsl/parser.h"
#include "io/csv.h"

using namespace ustl;

int main() {
  // Batch 1: what an entity-resolution stage would hand over.
  const char* batch1_csv =
      "ein,address\n"
      "e1,\"9 St, 02141 Wisconsin\"\n"
      "e1,\"9th St, 02141 WI\"\n"
      "e1,\"9 Street, 02141 WI\"\n"
      "e2,\"5th St, 22701 California\"\n"
      "e2,\"3rd E Ave, 33990 California\"\n"
      "e2,\"3 E Avenue, 33990 CA\"\n"
      "e3,\"77 Main Street, 10001 NY\"\n"
      "e3,\"77 Main St, 10001 NY\"\n";

  Result<ClusteredCsv> batch1 = ReadClusteredCsv(batch1_csv, "ein");
  if (!batch1.ok()) {
    printf("parse failed: %s\n", batch1.status().ToString().c_str());
    return 1;
  }
  printf("== batch 1: %zu clusters ==\n", batch1->table.num_clusters());

  // Standardize the address column. ApproveAllOracle stands in for the
  // human here; the CLI tool (tools/ustl-consolidate) offers a real
  // interactive prompt.
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 20;
  Column column = batch1->table.ExtractColumn(0);
  ColumnRunResult run = StandardizeColumn(&column, &oracle, options);
  batch1->table.StoreColumn(0, column);

  printf("presented %zu groups, approved %zu, %zu cell edits\n\n",
         run.groups_presented, run.groups_approved, run.edits);
  printf("== standardized batch 1 ==\n%s\n",
         WriteClusteredCsv(*batch1).c_str());

  // Golden records via majority consensus (Algorithm 1 line 10).
  printf("== golden records ==\n");
  std::vector<GoldenRecord> golden = MajorityConsensus(batch1->table);
  for (size_t c = 0; c < golden.size(); ++c) {
    printf("  %s: %s\n", batch1->cluster_keys[c].c_str(),
           golden[c][0].has_value() ? golden[c][0]->c_str() : "(tie)");
  }

  // Persist the approved transformations...
  std::vector<ApprovedTransformation> approved;
  for (const GroupTrace& trace : run.trace) {
    if (!trace.approved) continue;
    Result<Program> program = ParseProgram(trace.program);
    if (!program.ok()) continue;
    approved.push_back(ApprovedTransformation{
        "address", std::move(program).value(), trace.direction});
  }
  std::string log = SerializeTransformationLog(approved);
  printf("\n== transformation log (%zu entries) ==\n%s",
         approved.size(), log.c_str());

  // ... and replay them on a new batch: no oracle, no questions.
  const char* batch2_csv =
      "ein,address\n"
      "e9,\"12 Oak Street, 02139 Massachusetts\"\n"
      "e9,\"12 Oak St, 02139 Massachusetts\"\n";
  Result<ClusteredCsv> batch2 = ReadClusteredCsv(batch2_csv, "ein");
  if (!batch2.ok()) return 1;
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(log);
  if (!parsed.ok()) return 1;
  size_t edits = ReplayTransformations(&batch2->table, *parsed);
  printf("\n== batch 2 after replay (%zu edits) ==\n%s",
         edits, WriteClusteredCsv(*batch2).c_str());
  return 0;
}

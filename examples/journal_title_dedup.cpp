// Journal-title deduplication with golden records: the Rayyan scenario.
// Runs the full Algorithm 1 — standardize the title column, then majority
// consensus — and shows how many clusters truth discovery resolves before
// and after standardization (the Table 8 effect).
//
//   $ ./examples/journal_title_dedup [scale] [budget]
#include <cstdio>
#include <cstdlib>

#include "consolidate/cluster.h"
#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "consolidate/truth_discovery.h"
#include "datagen/generators.h"

using namespace ustl;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  size_t budget = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 100;

  JournalTitleGenOptions gen;
  gen.scale = scale;
  GeneratedDataset data = GenerateJournalTitleDataset(gen);

  // Assemble a one-column Table from the generated clusters.
  Table table({"JournalTitle"});
  for (const auto& cluster : data.column) {
    size_t c = table.AddCluster();
    for (const std::string& value : cluster) table.AddRecord(c, {value});
  }
  printf("JournalTitle analog: %zu records in %zu clusters\n\n",
         table.num_records(), table.num_clusters());

  auto resolved = [](const std::vector<GoldenRecord>& golden) {
    size_t count = 0;
    for (const GoldenRecord& record : golden) {
      count += record[0].has_value();
    }
    return count;
  };

  size_t before = resolved(MajorityConsensus(table));

  SimulatedOracle oracle(
      [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, SimulatedOracle::Options{});
  FrameworkOptions options;
  options.budget_per_column = budget;
  GoldenRecordRun run = GoldenRecordCreation(&table, &oracle, options);

  printf("Golden-record construction (Algorithm 1):\n");
  printf("  groups presented: %zu, approved: %zu\n",
         run.per_column[0].groups_presented,
         run.per_column[0].groups_approved);
  printf("  clusters with an MC golden value: %zu before, %zu after "
         "standardization (of %zu)\n",
         before, resolved(run.golden_records), table.num_clusters());

  printf("\nSample golden records:\n");
  for (size_t c = 0; c < run.golden_records.size() && c < 5; ++c) {
    const auto& golden = run.golden_records[c][0];
    printf("  cluster %zu (%zu records) -> %s\n", c, table.cluster(c).size(),
           golden.has_value() ? ("\"" + *golden + "\"").c_str()
                              : "(unresolved tie)");
  }
  return 0;
}

// Source-aware fusion: standardization as a pre-processing step for
// truth discovery (the Section 9 story, runnable).
//
// Generates the Address analog, attributes every record to one of six
// simulated data sources with known reliabilities, and compares three
// fusion methods — majority consensus, TruthFinder, and the Bayesian
// accuracy model — before and after the pipeline standardizes the
// variants. The punchline: variant spellings break the textual agreement
// signal the iterative methods learn from; standardization restores it,
// and the learned source trust snaps to the ground-truth ordering.
//
//   $ ./examples/source_fusion
#include <cstdio>

#include "consolidate/framework.h"
#include "consolidate/fusion.h"
#include "consolidate/oracle.h"
#include "datagen/generators.h"
#include "datagen/sources.h"

using namespace ustl;

namespace {

void PrintTrust(const char* tag, const std::vector<double>& trust) {
  printf("  %-18s", tag);
  for (double t : trust) printf("  %.3f", t);
  printf("\n");
}

}  // namespace

int main() {
  AddressGenOptions gen;
  gen.scale = 0.25;
  GeneratedDataset data = GenerateAddressDataset(gen);

  SourceModelOptions source_options;
  source_options.num_sources = 6;
  SourceAssignment sources = AssignSources(data, source_options);
  printf("== 6 simulated sources, ground-truth reliability ==\n");
  PrintTrust("configured", sources.reliability);
  PrintTrust("empirical", sources.EmpiricalReliability(data));

  const size_t n = sources.num_sources();
  FusionResult tf_before = TruthFinder(data.column, sources.source_of, n);
  FusionResult accu_before = AccuFusion(data.column, sources.source_of, n);

  printf("\n== learned trust BEFORE standardization ==\n");
  PrintTrust("TruthFinder", tf_before.source_trust);
  PrintTrust("Accu", accu_before.source_trust);
  printf("  (variant spellings hide the agreement signal: nearly flat)\n");

  // Standardize with the simulated expert.
  SimulatedOracle oracle(
      [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, SimulatedOracle::Options{});
  FrameworkOptions options;
  options.budget_per_column = 100;
  Column column = data.column;
  ColumnRunResult run = StandardizeColumn(&column, &oracle, options);
  printf("\nstandardized: %zu groups approved, %zu edits\n",
         run.groups_approved, run.edits);

  FusionResult tf_after = TruthFinder(column, sources.source_of, n);
  FusionResult accu_after = AccuFusion(column, sources.source_of, n);
  printf("\n== learned trust AFTER standardization ==\n");
  PrintTrust("TruthFinder", tf_after.source_trust);
  PrintTrust("Accu", accu_after.source_trust);
  printf("  (monotone in the configured reliability)\n");

  // Fused golden values, counted against cluster ground truth.
  auto count_correct = [&](const Column& col,
                           const std::vector<std::optional<std::string>>&
                               golden) {
    size_t correct = 0;
    for (size_t c = 0; c < col.size(); ++c) {
      if (!golden[c].has_value()) continue;
      for (size_t r = 0; r < col[c].size(); ++r) {
        if (col[c][r] == *golden[c] &&
            data.cell_truth[c][r] == data.cluster_true_id[c]) {
          ++correct;
          break;
        }
      }
    }
    return correct;
  };
  printf("\n== clusters fused to a ground-truth-correct value ==\n");
  printf("  %-18s  before  after\n", "method");
  printf("  %-18s  %zu      %zu\n", "TruthFinder",
         count_correct(data.column, tf_before.golden),
         count_correct(column, tf_after.golden));
  printf("  %-18s  %zu      %zu\n", "Accu",
         count_correct(data.column, accu_before.golden),
         count_correct(column, accu_after.golden));
  printf("  (of %zu clusters)\n", column.size());
  return 0;
}

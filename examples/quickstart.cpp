// Quickstart: the paper's running example end to end.
//
// Takes Table 1's Name column (two clusters of duplicate records), asks
// the library to group the candidate replacements by shared transformation
// program, and standardizes the column by approving every group — printing
// every intermediate artifact along the way.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

using namespace ustl;

int main() {
  // Table 1's Name column: clusters of duplicate records produced by
  // entity resolution (upstream of this library).
  Column column = {
      {"Mary Lee", "M. Lee", "Lee, Mary"},
      {"Smith, James", "James Smith", "J. Smith"},
  };

  printf("== Input clusters ==\n");
  for (size_t c = 0; c < column.size(); ++c) {
    printf("cluster %zu:", c);
    for (const std::string& value : column[c]) printf("  [%s]", value.c_str());
    printf("\n");
  }

  // Step 1 (Section 3): candidate replacements — every ordered pair of
  // non-identical values within a cluster, plus LCS-aligned segments.
  ReplacementStore store(column, CandidateGenOptions{});
  printf("\n== %zu candidate replacements (phi) ==\n", store.num_pairs());

  // Step 2: unsupervised grouping — candidates sharing a transformation
  // program (pivot path) and structure form one group.
  GroupingEngine engine(store.pairs(), GroupingOptions{});
  printf("\n== Replacement groups, largest first ==\n");
  std::vector<Group> groups;
  while (auto group = engine.Next()) {
    printf("group of %zu  [%s]\n", group->size(), group->program.c_str());
    for (size_t index : group->member_pair_indices) {
      const StringPair& pair = store.pair(index);
      printf("    \"%s\" -> \"%s\"\n", pair.lhs.c_str(), pair.rhs.c_str());
    }
    groups.push_back(std::move(*group));
  }

  // Step 3: a human verifies groups in decreasing size order and approved
  // ones are applied. Here an auto-approving oracle plays the human.
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 10;
  StandardizeColumn(&column, &oracle, options);

  printf("\n== Standardized clusters ==\n");
  for (size_t c = 0; c < column.size(); ++c) {
    printf("cluster %zu:", c);
    for (const std::string& value : column[c]) printf("  [%s]", value.c_str());
    printf("\n");
  }
  return 0;
}

// Address standardization: the paper's headline scenario (17,497 NYC
// funding applications clustered by EIN). Generates the Address analog,
// runs the budgeted verification loop with a ground-truth-backed oracle,
// prints the groups the "human" saw, and reports precision/recall/MCC on
// 1000 labelled sample pairs — the Section 8 protocol.
//
//   $ ./examples/address_standardization [scale] [budget]
#include <cstdio>
#include <cstdlib>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "datagen/generators.h"
#include "eval/metrics.h"

using namespace ustl;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  size_t budget = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 100;

  AddressGenOptions gen;
  gen.scale = scale;
  GeneratedDataset data = GenerateAddressDataset(gen);
  DatasetStats stats = ComputeStats(data);
  printf("Address analog: %zu records in %zu clusters, %zu distinct value "
         "pairs (%.0f%% variant)\n\n",
         stats.num_records, stats.num_clusters, stats.distinct_value_pairs,
         100 * stats.variant_pair_fraction);

  // Label 1000 sample pairs before touching anything (Section 8 metrics).
  auto samples = SampleLabeledPairs(
      data.column,
      [&](size_t c, size_t a, size_t b) {
        return data.IsVariantCellPair(c, a, b);
      },
      1000, 7);

  SimulatedOracle oracle(
      [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, SimulatedOracle::Options{});

  FrameworkOptions options;
  options.budget_per_column = budget;
  Column column = data.column;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);

  printf("presented %zu groups, human approved %zu, %zu cell edits\n\n",
         result.groups_presented, result.groups_approved, result.edits);
  printf("First groups shown to the human:\n");
  for (size_t i = 0; i < result.trace.size() && i < 8; ++i) {
    const GroupTrace& trace = result.trace[i];
    printf("  group %zu (size %zu) %s — e.g. \"%s\" -> \"%s\"\n", i + 1,
           trace.size, trace.approved ? "APPROVED" : "rejected",
           trace.sample_pairs.empty() ? "" : trace.sample_pairs[0].lhs.c_str(),
           trace.sample_pairs.empty() ? "" : trace.sample_pairs[0].rhs.c_str());
  }

  Confusion confusion = EvaluateIdentity(column, samples);
  printf("\nStandardization quality on %zu labelled pairs:\n",
         samples.size());
  printf("  precision = %.3f   recall = %.3f   MCC = %.3f\n",
         Precision(confusion), Recall(confusion), Mcc(confusion));
  printf("  (paper at full scale, 100 groups: precision .995, recall .75)\n");
  return 0;
}

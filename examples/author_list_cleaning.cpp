// Author-list cleaning: the AbeBooks scenario behind the paper's Table 4.
// Generates the AuthorList analog, shows the Table-4-style sample groups
// the method discovers (transposition, initials, nicknames, annotations),
// and compares the grouped pipeline against the Single baseline at the
// same human budget.
//
//   $ ./examples/author_list_cleaning [scale] [budget]
#include <cstdio>
#include <cstdlib>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "datagen/generators.h"
#include "eval/metrics.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

using namespace ustl;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  size_t budget = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 100;

  AuthorListGenOptions gen;
  gen.scale = scale;
  GeneratedDataset data = GenerateAuthorListDataset(gen);
  printf("AuthorList analog: %zu records in %zu clusters\n\n",
         data.num_records(), data.num_clusters());

  // Show a few Table-4-style groups.
  ReplacementStore store(data.column, CandidateGenOptions{});
  GroupingEngine engine(store.pairs(), GroupingOptions{});
  printf("Sample groups (cf. paper Table 4):\n");
  int shown = 0;
  for (int k = 0; k < 30 && shown < 4; ++k) {
    auto group = engine.Next();
    if (!group.has_value()) break;
    if (group->pure_constant || group->size() < 2) continue;
    printf("  Group %c (%zu members):\n", 'A' + shown, group->size());
    for (size_t i = 0; i < group->member_pair_indices.size() && i < 4; ++i) {
      const StringPair& pair = store.pair(group->member_pair_indices[i]);
      printf("    \"%s\" -> \"%s\"\n", pair.lhs.c_str(), pair.rhs.c_str());
    }
    ++shown;
  }

  // Group vs Single at the same budget.
  auto samples = SampleLabeledPairs(
      data.column,
      [&](size_t c, size_t a, size_t b) {
        return data.IsVariantCellPair(c, a, b);
      },
      1000, 7);
  auto run = [&](bool grouped) {
    SimulatedOracle oracle(
        [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
        data.direction_judge, SimulatedOracle::Options{});
    FrameworkOptions options;
    options.budget_per_column = budget;
    Column column = data.column;
    if (grouped) {
      StandardizeColumn(&column, &oracle, options);
    } else {
      StandardizeColumnSingle(&column, &oracle, options);
    }
    return EvaluateIdentity(column, samples);
  };
  Confusion grouped = run(true);
  Confusion single = run(false);
  printf("\nAt a budget of %zu yes/no questions:\n", budget);
  printf("  Group : precision %.3f  recall %.3f  MCC %.3f\n",
         Precision(grouped), Recall(grouped), Mcc(grouped));
  printf("  Single: precision %.3f  recall %.3f  MCC %.3f\n",
         Precision(single), Recall(single), Mcc(single));
  return 0;
}
